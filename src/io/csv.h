// CSV writer / reader for classification campaign results.
//
// The paper stores classification results "in convenient CSV" (§V.F.1):
// top-5 classes and probabilities, ground truth, and the fault positions
// (layer, channel, height, width, bit) per image.  Fields containing
// separators or quotes are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "io/atomic_file.h"
#include "util/error.h"

namespace alfi::io {

/// Streaming CSV writer bound to one output file.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates) and emits `header` as first row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header,
            WriteMode mode = WriteMode::kDirect);

  /// Appends one row; must have the same arity as the header.
  void write_row(const std::vector<std::string>& fields);

  /// Number of data rows written so far (header excluded).
  std::size_t rows_written() const { return rows_; }

  const std::vector<std::string>& header() const { return header_; }

  /// Flushes, verifies the final flush reached the file and closes;
  /// throws IoError on failure (e.g. disk full).  In kAtomic mode this
  /// is also the commit point: the temp file is renamed onto the final
  /// path.  The destructor also closes but swallows the error — call
  /// close() explicitly when the file's integrity matters.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void emit(const std::vector<std::string>& fields);

  std::ofstream out_;
  std::string final_path_;
  std::string write_path_;
  WriteMode mode_;
  std::vector<std::string> header_;
  std::size_t rows_ = 0;
};

/// Fully parsed CSV table.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for `name`; throws if absent.
  std::size_t column(const std::string& name) const;
};

/// Parses CSV text with a header row; handles quoted fields and embedded
/// separators / newlines.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file.
CsvTable read_csv_file(const std::string& path);

/// Quotes one field per RFC 4180 when needed.
std::string csv_escape(const std::string& field);

}  // namespace alfi::io
