// Append-only, CRC32-framed result journal for crash-safe campaigns.
//
// Each campaign worker spools the serialized result of every completed
// work unit into the journal; a crash (OOM, SIGKILL, power loss) can
// then only lose the units whose frames never reached the disk.  On
// resume the journal is scanned front to back, the first torn or
// corrupted frame truncates the tail (a crash mid-append leaves at most
// a broken suffix, never a broken middle), and every intact unit is
// replayed into the merge step instead of being recomputed.
//
// File layout — a sequence of frames, each:
//
//   ┌───────────────┬──────────────┬───────────────────┐
//   │ u32 size      │ u32 crc32    │ payload (size B)  │
//   └───────────────┴──────────────┴───────────────────┘
//
// with the payload's first byte a frame kind: kHeader (campaign
// fingerprint + geometry, always frame 0) or kUnit (u64 unit index +
// task-defined result bytes).  All integers little-endian.
//
// ByteWriter/ByteReader are the in-memory little-endian packers used to
// build frame payloads (and the checkpoint file) before framing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace alfi::io {

// ---- in-memory little-endian packing ----------------------------------------

/// Builds a byte string with the same encoding as BinaryWriter.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { put(&v, sizeof v); }
  void write_u32(std::uint32_t v) { put(&v, sizeof v); }
  void write_u64(std::uint64_t v) { put(&v, sizeof v); }
  void write_i64(std::int64_t v) { put(&v, sizeof v); }
  void write_f32(float v) { put(&v, sizeof v); }
  void write_f64(double v) { put(&v, sizeof v); }
  void write_string(std::string_view s);
  void write_bytes(std::string_view s) { put(s.data(), s.size()); }

  const std::string& bytes() const { return bytes_; }
  std::string take() { return std::move(bytes_); }

 private:
  void put(const void* data, std::size_t size);
  std::string bytes_;
};

/// Reads a ByteWriter-encoded byte string; throws ParseError on
/// underrun.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void get(void* data, std::size_t size);
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ---- journal ----------------------------------------------------------------

enum class JournalFrameKind : std::uint8_t { kHeader = 1, kUnit = 2 };

/// Campaign identity recorded in frame 0 and revalidated on resume.
struct JournalHeader {
  std::uint64_t fingerprint = 0;  ///< scenario + fault-matrix + seed hash
  std::uint64_t unit_count = 0;   ///< total campaign work units
  std::string task_kind;          ///< e.g. "imgclass" / "objdet"
};

/// Appends CRC32-framed payloads to a journal file (POSIX fd so frames
/// can be fsync'ed for durability).  Not thread-safe; the campaign
/// executor serializes appends under its merge mutex.
class JournalWriter {
 public:
  /// `resume` = false truncates and writes a fresh header frame;
  /// `resume` = true appends to the existing (already validated) file.
  JournalWriter(const std::string& path, const JournalHeader& header, bool resume);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one completed unit's serialized result.
  void append_unit(std::size_t unit, std::string_view payload);

  /// fsync — call before publishing a checkpoint that references the
  /// journal's current length.
  void sync();

  void close();

 private:
  void append_frame(std::string_view payload);

  int fd_ = -1;
  std::string path_;
};

/// Result of scanning (and recovering) a journal file.
struct JournalScan {
  JournalHeader header;
  /// Intact unit frames in file order: (unit index, payload bytes).
  std::vector<std::pair<std::size_t, std::string>> units;
  /// Bytes of the file covered by intact frames; anything beyond is a
  /// torn or corrupted tail.
  std::uint64_t valid_bytes = 0;
  /// True when a torn/corrupted tail was found past valid_bytes.
  bool torn_tail = false;
};

/// Scans `path` front to back, stopping at the first incomplete or
/// CRC-mismatching frame.  Throws ParseError when the file has no valid
/// header frame at all (not a journal / corrupted at byte 0).
JournalScan scan_journal(const std::string& path);

/// Truncates the torn tail so subsequent appends extend a clean frame
/// sequence.  No-op when the scan found no tail damage.
void repair_journal(const std::string& path, const JournalScan& scan);

}  // namespace alfi::io
