// YAML-subset parser for scenario configuration files.
//
// PyTorchALFI reads its campaign configuration from `scenarios/default.yml`
// (paper §IV.B / §V.C).  This parser supports the subset those files use:
//   * nested mappings by 2+-space indentation
//   * block sequences ("- item") of scalars and of mappings
//   * inline flow sequences ("[0, 31]")
//   * scalars: int, float, bool, null (~ / null), quoted & bare strings
//   * '#' comments and blank lines
// Documents parse into the io::Json value model so scenario handling and
// result handling share one tree type.
#pragma once

#include <string>
#include <string_view>

#include "io/json.h"

namespace alfi::io {

/// Parses a YAML-subset document into a Json tree; throws ParseError
/// with a line number on malformed input.
Json parse_yaml(std::string_view text);

/// Reads and parses a YAML file; throws IoError / ParseError.
Json read_yaml_file(const std::string& path);

/// Emits a Json tree in the same YAML subset (round-trips parse_yaml).
/// Used to persist the effective scenario of a run (paper: "PyTorchALFI
/// saves all experiment parameters in a yml file format").
std::string dump_yaml(const Json& value);

/// Writes `value` as YAML to `path`.
void write_yaml_file(const std::string& path, const Json& value);

}  // namespace alfi::io
