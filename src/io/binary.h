// Little-endian binary record streams.
//
// PyTorchALFI persists the pre-generated fault matrix and the post-run
// corruption trace as binary files (paper §IV.B: "After generating the
// faults, the fault matrix is stored as a binary file").  These helpers
// give the fault-file formats a portable fixed-width little-endian
// encoding with magic/version headers checked on load.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "io/atomic_file.h"
#include "util/error.h"

namespace alfi::io {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path,
                        WriteMode mode = WriteMode::kDirect);

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);

  void write_f32_array(const std::vector<float>& values);
  void write_i64_array(const std::vector<std::int64_t>& values);

  /// Writes a 4-byte magic tag plus a u32 version.
  void write_header(const char magic[4], std::uint32_t version);

  /// Flushes and closes; in kAtomic mode also the commit point (temp
  /// file renamed onto the final path).  Throws IoError when the final
  /// flush failed.
  void close();
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void put(const void* data, std::size_t size);
  std::ofstream out_;
  std::string final_path_;
  std::string path_;  ///< path being written (== final_path_ in kDirect)
  WriteMode mode_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();

  std::vector<float> read_f32_array();
  std::vector<std::int64_t> read_i64_array();

  /// Checks magic and returns the version; throws ParseError on mismatch.
  std::uint32_t read_header(const char magic[4]);

  bool at_eof();

 private:
  void get(void* data, std::size_t size);
  std::ifstream in_;
  std::string path_;
};

}  // namespace alfi::io
