#include "util/wilson.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace alfi::util {

WilsonInterval wilson_interval(std::size_t successes, std::size_t n, double z) {
  ALFI_CHECK(successes <= n, "wilson_interval: successes exceed trials");
  ALFI_CHECK(z > 0.0, "wilson_interval: z must be positive");
  if (n == 0) return {0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double spread =
      (z / denom) * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  WilsonInterval interval;
  interval.lo = std::max(0.0, center - spread);
  interval.hi = std::min(1.0, center + spread);
  return interval;
}

}  // namespace alfi::util
