// Campaign telemetry: a lock-cheap metrics registry.
//
// Fault-injection campaigns run millions of units; knowing how fast
// they run (per-unit latency percentiles, units/sec per worker) and
// what they actually did (faults armed vs. applied vs. skipped, NaN/Inf
// detections, journal bytes) is the precondition for every perf PR and
// for trusting the KPI denominators.  The registry is designed so the
// hot path never blocks:
//
//   * Counter / Gauge are single relaxed atomics.
//   * Histogram buckets are fixed at construction (no rehash, no
//     allocation on record()); recording is a binary search plus a few
//     relaxed atomic adds.
//   * The registry mutex guards only name resolution — call sites
//     resolve `Counter&` / `Histogram&` once and update lock-free.
//
// Determinism contract: counters accumulate commutatively, so their
// final values are identical for any worker count or scheduling order
// (the basis of the byte-identical `metrics.json` counter section at
// --jobs 1 vs N).  Gauges and histograms record wall-clock facts and
// are explicitly excluded from that guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/stopwatch.h"

namespace alfi::util {

/// Monotonic event count.  add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (throughput, ratios).  set() is a relaxed store.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative samples (latencies in ms).
///
/// Bucket upper bounds are fixed at construction; bucket i counts
/// samples v with v <= bounds[i] (first such i), plus one overflow
/// bucket past the last bound.  record() is lock-free: a binary search
/// over the immutable bounds and relaxed atomic updates.  Percentiles
/// are estimated by linear interpolation inside the covering bucket and
/// clamped to the observed [min, max].
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Smallest / largest recorded sample; 0.0 while empty.
  double min() const;
  double max() const;
  /// p in [0, 100]; 0.0 while empty.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the per-bucket counts (bounds().size() + 1 entries,
  /// the last one the overflow bucket).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Log-spaced 10us .. 60s default bounds for latency histograms (ms).
  static std::span<const double> default_latency_bounds_ms();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named metrics, shared by every campaign worker.  Lookup takes the
/// registry mutex; the returned references stay valid (and lock-free to
/// update) for the registry's lifetime.  Iteration is sorted by name,
/// so serialized output is deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers with the given bucket bounds (default: latency ms
  /// bounds); an existing histogram is returned as-is.
  Histogram& histogram(const std::string& name,
                       std::span<const double> upper_bounds = {});

  /// Sorted-by-name snapshots for serialization.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Span timing built on util/stopwatch.h: records the elapsed
/// milliseconds into a histogram when stopped (or destroyed).
class SpanTimer {
 public:
  explicit SpanTimer(Histogram& sink) : sink_(&sink) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() { stop(); }

  /// Records once; further calls return the first measurement.
  double stop_ms();
  void stop() { stop_ms(); }

 private:
  Histogram* sink_;
  Stopwatch watch_;
  bool stopped_ = false;
  double elapsed_ms_ = 0.0;
};

}  // namespace alfi::util
