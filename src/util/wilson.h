// Wilson score interval for a binomial proportion.
//
// The sequential campaign steering loop (DESIGN.md §16) decides when a
// vulnerability cell's SDC/DUE rate is known precisely enough to stop
// sampling it.  The Wilson interval is the standard choice for this:
// unlike the normal (Wald) approximation it stays inside [0, 1], is
// well-behaved at p = 0 and p = 1 (the common cases — many cells are
// fully masked or fully critical), and its half-width shrinks
// monotonically as samples accumulate, which is what an early-stopping
// rule needs.
#pragma once

#include <cstddef>

namespace alfi::util {

/// Confidence interval [lo, hi] for the success probability underlying
/// `successes` out of `n` Bernoulli trials, at critical value `z`
/// (1.96 ~ 95%).  n == 0 yields the vacuous interval [0, 1].
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
  double half_width() const { return (hi - lo) / 2.0; }
};

WilsonInterval wilson_interval(std::size_t successes, std::size_t n, double z);

}  // namespace alfi::util
