#include "util/drain.h"

#include <atomic>
#include <csignal>

namespace alfi {

namespace {

std::atomic<bool> g_drain{false};
std::atomic<bool> g_installed{false};

extern "C" void drain_signal_handler(int signum) {
  g_drain.store(true, std::memory_order_relaxed);
  // Restore the default disposition: a second signal terminates
  // immediately instead of being swallowed by a stuck drain.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_drain_handlers() {
  // Always (re-)arm: after a first signal the handler restored SIG_DFL,
  // and the next campaign/lease in this process must drain gracefully
  // again rather than die on its first ^C.
  g_installed.store(true);
  std::signal(SIGINT, drain_signal_handler);
  std::signal(SIGTERM, drain_signal_handler);
}

bool drain_requested() { return g_drain.load(std::memory_order_relaxed); }

void request_drain() { g_drain.store(true, std::memory_order_relaxed); }

void reset_drain_request() {
  g_drain.store(false, std::memory_order_relaxed);
  // Re-arm the handlers in case a first signal reset them to SIG_DFL.
  if (g_installed.load()) {
    std::signal(SIGINT, drain_signal_handler);
    std::signal(SIGTERM, drain_signal_handler);
  }
}

}  // namespace alfi
