#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace alfi {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<long long> parse_int(std::string_view text) {
  const std::string buf{trim(text)};
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string buf{trim(text)};
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string lowered = to_lower(trim(text));
  if (lowered == "true" || lowered == "yes" || lowered == "on" || lowered == "1") {
    return true;
  }
  if (lowered == "false" || lowered == "no" || lowered == "off" || lowered == "0") {
    return false;
  }
  return std::nullopt;
}

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace alfi
