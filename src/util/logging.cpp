#include "util/logging.h"

#include <atomic>
#include <mutex>

namespace alfi {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes emission so concurrent worker-thread messages come out as
/// whole lines.
std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {
void emit_log(LogLevel level, const std::string& message) {
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  // Assemble the full line first so the stream sees exactly one write.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[alfi:";
  line += log_level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(log_mutex());
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
}
}  // namespace detail

}  // namespace alfi
