#include "util/logging.h"

namespace alfi {

namespace {
LogLevel g_level = LogLevel::kInfo;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {
void emit_log(LogLevel level, const std::string& message) {
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[alfi:" << log_level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace alfi
