// Error handling primitives for torchalfi-cpp.
//
// Following the C++ Core Guidelines (E.2) we use exceptions to signal
// errors that cannot be handled locally.  All library exceptions derive
// from alfi::Error so callers can catch one type at the API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace alfi {

/// Root exception type for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration (scenario file, parameter ranges).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Shape or index mismatch in tensor / layer operations.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape error: " + what) {}
};

/// Malformed file contents (fault files, JSON, YAML, CSV).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// I/O failure (missing file, write failure).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);
}  // namespace detail

}  // namespace alfi

/// Precondition / invariant check that is always active (not only in debug
/// builds): fault-injection campaigns run in release mode and silent
/// corruption of the *framework itself* would invalidate every result.
#define ALFI_CHECK(expr, message)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::alfi::detail::fail_check(#expr, __FILE__, __LINE__, (message));  \
    }                                                                    \
  } while (false)
