#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace alfi::util {

namespace {

/// Portable atomic double accumulation (fetch_add on atomic<double> is
/// C++20 but not universally lowered to hardware ops).
void atomic_add(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

constexpr double kDefaultLatencyBoundsMs[] = {
    0.01, 0.02, 0.05, 0.1,  0.2,  0.5,   1.0,   2.0,    5.0,    10.0,   20.0,
    50.0, 100., 200., 500., 1000., 2000., 5000., 10000., 30000., 60000.};

}  // namespace

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  ALFI_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  ALFI_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bucket bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double v) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) -
                               bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::percentile(double p) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  p = std::clamp(p, 0.0, 100.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 *
                                              static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    cumulative += counts[i];
    if (cumulative < rank) continue;
    if (i == bounds_.size()) return max();  // overflow bucket
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double into =
        static_cast<double>(rank - (cumulative - counts[i])) /
        static_cast<double>(counts[i]);
    return std::clamp(lower + into * (upper - lower), min(), max());
  }
  return max();
}

std::span<const double> Histogram::default_latency_bounds_ms() {
  return kDefaultLatencyBoundsMs;
}

// ---- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = Histogram::default_latency_bounds_ms();
    slot = std::make_unique<Histogram>(
        std::vector<double>(upper_bounds.begin(), upper_bounds.end()));
  }
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

// ---- SpanTimer --------------------------------------------------------------

double SpanTimer::stop_ms() {
  if (!stopped_) {
    stopped_ = true;
    elapsed_ms_ = watch_.elapsed_ms();
    sink_->record(elapsed_ms_);
  }
  return elapsed_ms_;
}

}  // namespace alfi::util
