// Graceful preemption for long campaigns.
//
// A SIGINT/SIGTERM received mid-campaign should not kill the process in
// the middle of a work unit: with checkpointing enabled the run can
// instead *drain* — finish the in-flight columns, flush the journal,
// write a final checkpoint, and exit with a distinct code so schedulers
// (and humans) know the campaign is resumable, not failed.
//
// The handler only sets a flag; the campaign executor polls
// drain_requested() between work units.  A second signal falls back to
// the default disposition (immediate termination) so an impatient ^C^C
// still works.
//
// Re-entrancy: a fleet worker process serves many leases (and a test
// binary runs many campaigns), so the machinery must survive repeated
// use in one process.  install_drain_handlers() always (re-)arms the
// handlers — after a first signal fired, the disposition fell back to
// SIG_DFL, and a later campaign in the same process must not die on the
// next ^C just because an earlier one was drained.  Pair it with
// reset_drain_request() at each campaign/lease boundary.
#pragma once

namespace alfi {

/// Installs SIGINT/SIGTERM handlers that request a graceful drain.
/// Idempotent AND re-arming: safe to call before every campaign or
/// lease; a disposition reset to SIG_DFL by an earlier first signal is
/// restored to the drain handler.
void install_drain_handlers();

/// True once SIGINT or SIGTERM was received (or request_drain() called).
bool drain_requested();

/// Programmatic drain request — same effect as receiving a signal.
void request_drain();

/// Clears the flag (between campaigns in one process, and in tests).
void reset_drain_request();

/// Exit code for "campaign drained to checkpoint, resume to finish"
/// (EX_TEMPFAIL: transient condition, retrying will succeed).
inline constexpr int kDrainExitCode = 75;

}  // namespace alfi
