// Graceful preemption for long campaigns.
//
// A SIGINT/SIGTERM received mid-campaign should not kill the process in
// the middle of a work unit: with checkpointing enabled the run can
// instead *drain* — finish the in-flight columns, flush the journal,
// write a final checkpoint, and exit with a distinct code so schedulers
// (and humans) know the campaign is resumable, not failed.
//
// The handler only sets a flag; the campaign executor polls
// drain_requested() between work units.  A second signal falls back to
// the default disposition (immediate termination) so an impatient ^C^C
// still works.
#pragma once

namespace alfi {

/// Installs SIGINT/SIGTERM handlers that request a graceful drain.
/// Idempotent; only the first call installs.
void install_drain_handlers();

/// True once SIGINT or SIGTERM was received (or request_drain() called).
bool drain_requested();

/// Programmatic drain request — same effect as receiving a signal.
void request_drain();

/// Clears the flag (between campaigns in one process, and in tests).
void reset_drain_request();

/// Exit code for "campaign drained to checkpoint, resume to finish"
/// (EX_TEMPFAIL: transient condition, retrying will succeed).
inline constexpr int kDrainExitCode = 75;

}  // namespace alfi
