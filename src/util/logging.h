// Minimal leveled logger used by campaign drivers to narrate progress.
//
// Thread-safe: the parallel campaign runner logs from worker threads, so
// each message is assembled off-stream and emitted as one atomic write
// under a global mutex — concurrent lines never interleave mid-line.
// The level threshold is atomic and may be changed at any time.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace alfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "epoch " << epoch;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) detail::emit_log(level_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace alfi

#define ALFI_LOG(level) ::alfi::LogMessage(::alfi::LogLevel::level)
