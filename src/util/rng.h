// Deterministic random number generation.
//
// Fault-injection campaigns must be exactly reproducible from a single
// seed recorded in the scenario metadata (paper §IV.A: "Storing and
// reusing fault locations is essential to ensure the comparability and
// reproducibility of the researcher's experiments").  We therefore use
// our own xoshiro256** implementation whose stream is identical across
// platforms and standard library versions, unlike std::mt19937 +
// std::uniform_int_distribution whose mapping is unspecified.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace alfi {

/// splitmix64: used to expand a single user seed into xoshiro state.
/// Advances `state` and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** PRNG with portable, platform-independent derived
/// distributions.  Copyable: copying forks the stream deterministically.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed'a1f1'0000'0001ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (portable, unlike std::normal_distribution).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Index drawn from a discrete distribution proportional to `weights`
  /// (weights need not be normalized; all must be >= 0, sum > 0).
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Draws `count` distinct indices from [0, n) (count <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t count);

  /// State snapshot for persistence in experiment metadata.
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

  /// Derives an independent child stream (for per-run fault generation
  /// that is insensitive to how many draws earlier runs consumed).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace alfi
