// Content hashing for campaign integrity checks.
//
// Two small, portable hashes with stable outputs across platforms and
// library versions (campaign checkpoints written by one build must be
// readable by another):
//   * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) frames every
//     journal record so a resumed campaign can detect torn or corrupted
//     tail writes after a crash.
//   * FNV-1a 64-bit fingerprints the scenario and fault matrix so a
//     resume against a *different* campaign configuration is refused
//     instead of silently merging incompatible results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace alfi {

/// CRC32 of `size` bytes, optionally continuing from a previous value
/// (pass the prior return value as `seed` to hash in chunks).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// FNV-1a 64-bit, chainable through `seed` like crc32().
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf2'9ce4'8422'2325ULL);

inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t seed = 0xcbf2'9ce4'8422'2325ULL) {
  return fnv1a64(bytes.data(), bytes.size(), seed);
}

}  // namespace alfi
