#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace alfi {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ALFI_CHECK(bound > 0, "next_below bound must be positive");
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ALFI_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform() {
  // 53 random bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ALFI_CHECK(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  // Box-Muller; discard the second variate to keep the stream simple.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) {
  ALFI_CHECK(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0,1]");
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  ALFI_CHECK(!weights.empty(), "weighted_index needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    ALFI_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  ALFI_CHECK(total > 0.0, "weights must not all be zero");
  const double pick = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (pick < cumulative) return i;
  }
  return weights.size() - 1;  // guard against rounding at the upper edge
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t count) {
  ALFI_CHECK(count <= n, "cannot sample more items than the population holds");
  // Floyd's algorithm: O(count) expected draws, no O(n) scratch when count << n.
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t j = n - count; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    bool seen = false;
    for (const std::size_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

Rng Rng::fork() {
  Rng child(0);
  std::uint64_t sm = next_u64();
  for (auto& word : child.state_) word = splitmix64_next(sm);
  return child;
}

}  // namespace alfi
