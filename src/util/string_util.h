// Small string helpers shared by the parsers (YAML/JSON/CSV) and the
// result writers.  Kept dependency-free.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace alfi {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (config keys are case-insensitive).
std::string to_lower(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Strict integer parse of the whole string; nullopt on any junk.
std::optional<long long> parse_int(std::string_view text);

/// Strict floating-point parse of the whole string; nullopt on any junk.
std::optional<double> parse_double(std::string_view text);

/// Strict boolean parse: true/false/yes/no/on/off/1/0 (case-insensitive).
std::optional<bool> parse_bool(std::string_view text);

/// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace alfi
