// Wall-clock stopwatch for campaign timing reports.
#pragma once

#include <chrono>

namespace alfi {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Heartbeat timer: due() answers "has `interval_ms` passed since the
/// last heartbeat?" and re-arms when it has.  Fleet workers use one to
/// pace liveness frames between work units; the coordinator uses one to
/// pace its lease-expiry scans.  The first due() after construction
/// waits a full interval — constructing the timer counts as a beat.
class IntervalTimer {
 public:
  explicit IntervalTimer(double interval_ms) : interval_ms_(interval_ms) {}

  bool due() {
    if (watch_.elapsed_ms() < interval_ms_) return false;
    watch_.reset();
    return true;
  }

  double interval_ms() const { return interval_ms_; }

 private:
  double interval_ms_;
  Stopwatch watch_;
};

}  // namespace alfi
