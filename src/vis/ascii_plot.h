// Text visualization of campaign results (the paper ships plotting
// tools for object detection; this library renders the same summaries
// as terminal tables and bar charts, which is what the bench binaries
// print).
#pragma once

#include <string>
#include <vector>

namespace alfi::vis {

struct Series {
  std::string label;
  std::vector<double> values;
};

/// Horizontal bar chart: one bar per (label, value), scaled to `width`
/// characters; values are annotated with `unit`.
std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width = 48, const std::string& unit = "");

/// Fixed-width table: header plus rows; columns are padded to content.
std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows);

/// Multi-series chart over a shared x axis, rendered as a table plus a
/// per-series sparkline-style bar column (used for faults-per-image
/// sweeps).
std::string series_table(const std::vector<double>& x_values,
                         const std::string& x_label,
                         const std::vector<Series>& series,
                         const std::string& value_format = "%.4f");

}  // namespace alfi::vis
