#include "vis/ascii_plot.h"

#include <algorithm>

#include "util/string_util.h"

namespace alfi::vis {

std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width, const std::string& unit) {
  if (bars.empty()) return "";
  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const auto& [label, value] : bars) {
    label_width = std::max(label_width, label.size());
    max_value = std::max(max_value, value);
  }
  std::string out;
  for (const auto& [label, value] : bars) {
    const std::size_t filled =
        max_value > 0.0
            ? static_cast<std::size_t>(value / max_value * static_cast<double>(width))
            : 0;
    out += label;
    out.append(label_width - label.size() + 2, ' ');
    out += '|';
    out.append(filled, '#');
    out.append(width - filled, ' ');
    out += strformat("| %.4g%s\n", value, unit.c_str());
  }
  return out;
}

std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += ' ' + cell;
      line.append(widths[c] - cell.size() + 1, ' ');
      line += '|';
    }
    return line + '\n';
  };

  std::string separator = "|";
  for (const std::size_t w : widths) {
    separator.append(w + 2, '-');
    separator += '|';
  }
  separator += '\n';

  std::string out = emit_row(header) + separator;
  for (const auto& row : rows) out += emit_row(row);
  return out;
}

std::string series_table(const std::vector<double>& x_values,
                         const std::string& x_label,
                         const std::vector<Series>& series,
                         const std::string& value_format) {
  std::vector<std::string> header{x_label};
  for (const Series& s : series) header.push_back(s.label);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    std::vector<std::string> row{strformat("%g", x_values[i])};
    for (const Series& s : series) {
      row.push_back(i < s.values.size()
                        ? strformat(value_format.c_str(), s.values[i])
                        : std::string{});
    }
    rows.push_back(std::move(row));
  }
  return table(header, rows);
}

}  // namespace alfi::vis
