#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"
#include "vis/ascii_plot.h"

namespace alfi::core {

std::vector<CsvFaultRef> parse_fault_field(const std::string& field) {
  std::vector<CsvFaultRef> refs;
  if (trim(field).empty()) return refs;
  for (const std::string& entry : split(field, ';')) {
    const std::vector<std::string> parts = split(entry, ':');
    if (parts.size() != 7) {
      throw ParseError("malformed fault field entry: " + entry);
    }
    CsvFaultRef ref;
    const auto layer = parse_int(parts[0]);
    const auto bit = parse_int(parts[6]);
    if (!layer || !bit) throw ParseError("malformed fault field entry: " + entry);
    ref.layer = *layer;
    ref.bit_pos = static_cast<int>(*bit);
    refs.push_back(ref);
  }
  return refs;
}

CampaignAnalysis analyze_results_table(const io::CsvTable& table) {
  CampaignAnalysis analysis;
  const std::size_t col_due = table.column("due");
  const std::size_t col_sde = table.column("sde");
  const std::size_t col_faults = table.column("faults");
  const std::size_t col_orig_top1 = table.column("orig_top1_class");
  const std::size_t col_corr_top1 = table.column("corr_top1_class");
  // "applied" is optional (older CSVs predate it); column() throws on a
  // missing name, so scan the header by hand.
  const auto applied_it =
      std::find(table.header.begin(), table.header.end(), "applied");
  const std::size_t col_applied =
      applied_it == table.header.end()
          ? table.header.size()
          : static_cast<std::size_t>(applied_it - table.header.begin());

  for (const auto& row : table.rows) {
    const bool due = row[col_due] == "1";
    const bool sde = row[col_sde] == "1";
    // Without an "applied" column every drawn fault is assumed to have
    // landed (the pre-column behaviour).
    bool skipped = false;
    if (col_applied < table.header.size()) {
      const auto applied = parse_int(row[col_applied]);
      skipped = applied && *applied == 0;
    }
    ++analysis.total_images;
    analysis.skipped_images += skipped ? 1 : 0;
    analysis.due_images += due ? 1 : 0;
    analysis.sde_images += sde ? 1 : 0;

    for (const CsvFaultRef& ref : parse_fault_field(row[col_faults])) {
      GroupStats& layer_stats = analysis.by_layer[ref.layer];
      ++layer_stats.total;
      layer_stats.skipped += skipped ? 1 : 0;
      layer_stats.sde += sde ? 1 : 0;
      layer_stats.due += due ? 1 : 0;
      if (ref.bit_pos >= 0) {
        GroupStats& bit_stats = analysis.by_bit[ref.bit_pos];
        ++bit_stats.total;
        bit_stats.skipped += skipped ? 1 : 0;
        bit_stats.sde += sde ? 1 : 0;
        bit_stats.due += due ? 1 : 0;
      }
    }

    if (sde) {
      const auto from = parse_int(row[col_orig_top1]);
      const auto to = parse_int(row[col_corr_top1]);
      if (from && to) {
        ++analysis.misclassification[{static_cast<std::size_t>(*from),
                                      static_cast<std::size_t>(*to)}];
      }
    }
  }
  return analysis;
}

CampaignAnalysis analyze_results_csv(const std::string& path) {
  return analyze_results_table(io::read_csv_file(path));
}

TraceStats analyze_trace(const std::vector<InjectionRecord>& records) {
  TraceStats stats;
  stats.records = records.size();
  double abs_orig = 0.0, abs_corr = 0.0;
  double log_mag = 0.0;
  std::size_t finite_corr = 0, mag_terms = 0;
  for (const InjectionRecord& record : records) {
    if (record.flip_direction == "0->1") ++stats.flips_zero_to_one;
    else if (record.flip_direction == "1->0") ++stats.flips_one_to_zero;

    abs_orig += std::fabs(record.original_value);
    if (std::isfinite(record.corrupted_value)) {
      abs_corr += std::fabs(record.corrupted_value);
      ++finite_corr;
    } else {
      ++stats.produced_nonfinite;
    }
    if (std::isfinite(record.original_value) &&
        std::isfinite(record.corrupted_value) && record.original_value != 0.0f &&
        record.corrupted_value != 0.0f) {
      log_mag += std::log10(std::fabs(record.corrupted_value)) -
                 std::log10(std::fabs(record.original_value));
      ++mag_terms;
    }
  }
  if (stats.records > 0) {
    stats.mean_abs_original = abs_orig / static_cast<double>(stats.records);
  }
  if (finite_corr > 0) {
    stats.mean_abs_corrupted = abs_corr / static_cast<double>(finite_corr);
  }
  if (mag_terms > 0) {
    stats.mean_log10_magnification = log_mag / static_cast<double>(mag_terms);
  }
  return stats;
}

TraceStats analyze_trace_file(const std::string& path) {
  return analyze_trace(load_injection_records(path));
}

std::string format_analysis(const CampaignAnalysis& analysis) {
  std::ostringstream os;
  os << "campaign: " << analysis.total_images << " images";
  if (analysis.skipped_images > 0) {
    os << " (" << analysis.skipped_images << " skipped injections)";
  }
  os << ", " << analysis.sde_images << " SDE, " << analysis.due_images
     << " DUE\n\n";

  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [layer, stats] : analysis.by_layer) {
      rows.push_back({std::to_string(layer), std::to_string(stats.applied()),
                      strformat("%.3f", stats.sde_rate()),
                      strformat("%.3f", stats.due_rate())});
    }
    os << "layer-wise vulnerability:\n"
       << vis::table({"layer", "applied", "sde_rate", "due_rate"}, rows) << '\n';
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [bit, stats] : analysis.by_bit) {
      rows.push_back({std::to_string(bit), std::to_string(stats.applied()),
                      strformat("%.3f", stats.sde_rate()),
                      strformat("%.3f", stats.due_rate())});
    }
    os << "bit-wise vulnerability:\n"
       << vis::table({"bit", "applied", "sde_rate", "due_rate"}, rows) << '\n';
  }
  if (!analysis.misclassification.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [pair, count] : analysis.misclassification) {
      rows.push_back({std::to_string(pair.first), std::to_string(pair.second),
                      std::to_string(count)});
    }
    os << "SDE misclassifications (fault-free top-1 -> corrupted top-1):\n"
       << vis::table({"from", "to", "count"}, rows);
  }
  return os.str();
}

std::string format_trace_stats(const TraceStats& stats) {
  std::ostringstream os;
  os << "injection trace: " << stats.records << " applications\n"
     << "  flip direction 0->1: " << stats.flips_zero_to_one << ", 1->0: "
     << stats.flips_one_to_zero << '\n'
     << "  corrupted to NaN/Inf: " << stats.produced_nonfinite << '\n'
     << strformat("  mean |original| %.4g, mean |corrupted| %.4g\n",
                  stats.mean_abs_original, stats.mean_abs_corrupted)
     << strformat("  mean log10 |corr/orig| magnification: %.2f decades\n",
                  stats.mean_log10_magnification);
  return os.str();
}

}  // namespace alfi::core
