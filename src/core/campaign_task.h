// CampaignTask — the unified contract between a fault-injection
// workload and the campaign execution machinery.
//
// The two harnesses (TestErrorModelsImgClass, TestErrorModelsObjDet)
// used to own parallel copies of the same loop: shard the fault matrix,
// run units, buffer per-shard results, merge in order.  Checkpointing
// would have doubled that duplication.  Instead both workloads now
// implement this interface and a single executor (core::CampaignExecutor,
// campaign.h) owns sharding, journaling, checkpoint/resume and the
// ordered merge — one code path, two (or N) workloads.
//
// The contract that makes crash-safe resume byte-exact:
//   * Work is addressed absolutely: unit t means the same inputs, fault
//     columns and RNG stream no matter which worker, job count or
//     process (original vs. resumed) runs it.
//   * run_unit(t) returns the unit's complete result as bytes; those
//     bytes are journaled, and the final outputs are produced ONLY by
//     absorbing payloads in ascending t — so replayed-from-journal and
//     freshly-computed units are indistinguishable.
//   * fingerprint() digests everything the result depends on (scenario,
//     fault matrix, seeds); resume refuses a mismatch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/mitigation.h"
#include "core/scenario.h"
#include "core/steering.h"
#include "io/journal.h"

namespace alfi::core {

/// Distributed fleet execution (DESIGN.md §14).  A coordinator process
/// leases contiguous unit ranges to worker processes — forked locally
/// and/or connected over a length-prefixed TCP protocol — and merges
/// their CRC32-framed journal segments into outputs byte-identical to
/// `--jobs 1`.  Disabled (both modes off) by default.
struct FleetOptions {
  /// Coordinator: fork this many local worker processes that connect
  /// back over loopback.  They inherit the prepared task (model,
  /// calibration), so spawn cost is one fork(), not a reload.
  std::size_t local_workers = 0;
  /// Coordinator: listen for remote workers even when local_workers
  /// is 0 (a coordinator with only remote workers).
  bool coordinator = false;
  /// Coordinator: TCP listen port; 0 asks the kernel for an ephemeral
  /// port (reported through on_listen and the log).
  std::uint16_t listen_port = 0;
  /// Worker: "host:port" of the coordinator to join.  A worker runs no
  /// merge and writes no outputs; it only streams unit frames back.
  std::string connect;
  /// Upper bound on units per lease grant.  Leases reuse the
  /// executor's deterministic contiguous sharding, so a small bound
  /// load-balances while keeping every range contiguous.
  std::size_t lease_units = 8;
  /// Worker liveness frame cadence (any frame counts as liveness).
  double heartbeat_ms = 250.0;
  /// Coordinator declares a silent worker dead after this long,
  /// drops the connection and re-issues its lease remainder.
  double lease_timeout_ms = 5000.0;

  // ---- test hooks (chaos/identity tests observe the fleet) ----------------
  std::function<void(int pid)> on_local_spawn;        ///< forked child pid
  std::function<void(std::uint16_t)> on_listen;       ///< bound port
  std::function<void(std::size_t done)> on_progress;  ///< after each absorb

  bool coordinator_mode() const { return coordinator || local_workers > 0; }
  bool worker_mode() const { return !connect.empty(); }
  bool enabled() const { return coordinator_mode() || worker_mode(); }
};

/// Configuration shared by every campaign workload.  Harness-specific
/// configs derive from this so the executor and the CLI handle both
/// through one type.
struct CampaignConfigBase {
  std::string model_name = "model";
  /// Directory for the output sets; empty = write nothing (KPIs only).
  std::string output_dir;
  /// Reuse a persisted fault matrix instead of generating one.
  std::string fault_file;
  /// Harden a copy of the inference path with Ranger or Clipper and
  /// report the hardened verdicts alongside.
  std::optional<MitigationKind> mitigation;
  /// Worker threads (CampaignRunner).  1 = serial on the wrapped model;
  /// 0 = hardware concurrency; N > 1 runs N deep-cloned replicas over
  /// contiguous fault-matrix shards.  Output is byte-identical for
  /// every job count.
  std::size_t jobs = 1;
  /// Route inference through arena-backed nn::InferenceWorkspace buffers
  /// (planned once, zero steady-state heap allocations; DESIGN.md §10).
  /// Off = the legacy allocating forward() path.  Both paths produce
  /// byte-identical campaign outputs; the toggle exists for A/B
  /// comparison and for training-mode models, which the workspace
  /// refuses.
  bool workspace = true;
  /// Differential inference (DESIGN.md §11): the corrupted and mitigated
  /// passes replay the fault-free pass's cached layer outputs up to the
  /// earliest armed layer and recompute only the suffix.  Requires the
  /// workspace path (silently full-recomputes when workspace is off).
  /// Outputs are byte-identical either way; `--no-diff` exists for A/B
  /// verification and paranoia.
  bool diff = true;
  /// Unit packing (DESIGN.md §12): hand each runner up to this many
  /// units per call so it can fuse them into one batched forward pass,
  /// arming each unit's faults on its own batch slot.  Units are packed
  /// at the task's unit_pack_stride() — e.g. the classification harness
  /// packs the SAME image across epochs so one shared fault-free pass
  /// serves the whole pack.  Clamped to the task's max_unit_pack() (1
  /// for workloads that cannot pack, e.g. weight-fault scenarios).
  /// 1 — the default — is the classic unit-at-a-time path; every value
  /// produces byte-identical campaign outputs.
  std::size_t unit_batch = 1;

  // ---- crash safety --------------------------------------------------------
  /// Directory for the result journal + checkpoint; empty disables
  /// checkpointing.  Requires inj_policy per_image for classification.
  std::string checkpoint_dir;
  /// Continue a prior run from checkpoint_dir: validate fingerprints,
  /// repair the journal tail, skip completed units.
  bool resume = false;
  /// Completed units between checkpoint writes (journal frames are
  /// appended on every unit regardless).
  std::size_t checkpoint_every = 8;
  /// Polled between units; returning true requests a graceful drain
  /// (finish in-flight units, checkpoint, throw CampaignInterrupted).
  /// Defaults to alfi::drain_requested() — the SIGINT/SIGTERM flag.
  std::function<bool()> interrupt;

  // ---- distributed fleet ---------------------------------------------------
  /// Fleet coordinator/worker role (core/fleet.h).  Coordinator mode
  /// requires a checkpoint_dir: shipped unit frames land in the same
  /// journal a local run would write.
  FleetOptions fleet;

  // ---- adaptive steering ---------------------------------------------------
  /// Budgeted / adaptively-steered sampling (core/steering.h,
  /// DESIGN.md §16).  When enabled() the executor and the fleet
  /// coordinator run the round-based planning loop instead of the
  /// exhaustive sweep, and may legitimately finish with fewer than
  /// unit_count() completed units.
  SteeringOptions steering;

  // ---- telemetry -----------------------------------------------------------
  /// Write the campaign's metrics.json here (io/metrics_json.h schema,
  /// atomic temp+rename); empty disables the file.
  std::string metrics_path;
  /// Emit a throttled live progress line on stderr while units run.
  bool progress = false;
};

/// Per-worker execution engine for one shard: owns whatever replica /
/// injector state the workload needs, and computes units one at a time
/// (run_unit) or in packed batches (run_unit_pack).
class CampaignUnitRunner {
 public:
  virtual ~CampaignUnitRunner() = default;

  /// Computes global work unit `t` and returns its serialized result.
  /// Must be deterministic in t alone (given the task's fingerprint).
  virtual std::string run_unit(std::size_t t) = 0;

  /// Computes the given units (ascending, distinct — consecutive at the
  /// task's unit_pack_stride()) and returns their serialized payloads in
  /// the same order.  The default implementation loops run_unit; runners
  /// that support unit packing override it to fuse the units into one
  /// batched forward pass.  The contract is strict: every payload must
  /// be byte-identical to what run_unit would have produced, and
  /// units.size() never exceeds the task's max_unit_pack().
  virtual std::vector<std::string> run_unit_pack(
      const std::vector<std::size_t>& units);
};

/// A campaign workload the executor can shard, journal and merge.
class CampaignTask {
 public:
  virtual ~CampaignTask() = default;

  /// Stable workload tag recorded in the journal header ("imgclass",
  /// "objdet"); resume refuses a journal written by a different kind.
  virtual std::string task_kind() const = 0;

  virtual const Scenario& task_scenario() const = 0;
  virtual const CampaignConfigBase& base_config() const = 0;

  /// Total number of absolutely-addressed work units.
  virtual std::size_t unit_count() const = 0;

  /// Digest of scenario + fault matrix + seed: everything unit results
  /// depend on.  See campaign_fingerprint().
  virtual std::uint64_t fingerprint() const = 0;

  /// Called once before any unit runs (and again, idempotently, on
  /// resume): create output dirs, write meta-files, profile
  /// calibration bounds.
  virtual void prepare() = 0;

  /// Builds a runner.  `shared_model` is true for the single-shard
  /// serial path (use the wrapped original model); false means the
  /// runner must own an isolated replica (called from worker threads).
  virtual std::unique_ptr<CampaignUnitRunner> make_unit_runner(bool shared_model) = 0;

  /// Upper bound on how many units one run_unit_pack call may receive;
  /// the executor clamps config.unit_batch to it.  The default (1)
  /// disables packing; workloads whose units are independent
  /// single-sample inferences with slot-addressable faults raise it
  /// (DESIGN.md §12 lists the degradation rules).
  virtual std::size_t max_unit_pack() const { return 1; }

  /// Distance between units packed into one run_unit_pack call.  The
  /// default (1) packs consecutive units.  Workloads whose unit index
  /// wraps an input set — classification units are epoch * dataset_size
  /// + image — return the wrap period so a pack holds the SAME input
  /// under different fault groups, letting the runner share a single
  /// fault-free pass across the whole pack (DESIGN.md §12).
  virtual std::size_t unit_pack_stride() const { return 1; }

  /// Steering support (core/steering.h): unit t's sampling cell, for
  /// every t in [0, unit_count()).  The default — an empty vector —
  /// declares the workload unsteerable; the executor rejects steering
  /// options against it.
  virtual std::vector<SteeringCellKey> steering_cells() const { return {}; }

  /// Classifies one unit's serialized payload into a steering outcome.
  /// Pure function of the payload bytes, callable on the coordinating
  /// thread for freshly-computed and journal-replayed units alike.
  /// The default throws: workloads advertising steering_cells() must
  /// override it.
  virtual SteeringUnitOutcome classify_unit(std::size_t t,
                                            const std::string& payload) const;

  /// Folds one unit's payload into the final result.  Called on the
  /// coordinating thread in ascending t, each completed unit exactly
  /// once (a steered campaign absorbs only the units it executed).
  virtual void absorb_unit(std::size_t t, const std::string& payload) = 0;

  /// Writes the merged outputs after every unit was absorbed.
  virtual void finalize() = 0;
};

// ---- shared payload helpers --------------------------------------------------

/// Fault / injection-record packing shared by the workloads' unit
/// payloads (field-compatible with the fault-file binary format).
void write_fault_bytes(io::ByteWriter& writer, const Fault& fault);
Fault read_fault_bytes(io::ByteReader& reader);
void write_record_bytes(io::ByteWriter& writer, const InjectionRecord& record);
InjectionRecord read_record_bytes(io::ByteReader& reader);

class FaultMatrix;

/// FNV-1a digest of the scenario (YAML dump), the full fault matrix and
/// the seed — the identity a resume validates before trusting a journal.
std::uint64_t campaign_fingerprint(const Scenario& scenario,
                                   const FaultMatrix& faults);

class Injector;

/// Execution-order prefix boundary for one unit's differential passes:
/// the smallest leaf execution index (in `baseline`'s recorded order)
/// among the injector's armed layers.  Leaves running strictly before it
/// are bit-identical to the fault-free pass and may be replayed.
/// Conservative by construction: an unplanned baseline or an armed layer
/// the baseline never executed (e.g. a detector head running under a
/// separate workspace) returns 0 — full recompute; no armed layers at
/// all returns InferenceWorkspace::kSkipAllLeaves.
std::size_t diff_prefix_boundary(const Injector& injector,
                                 const nn::InferenceWorkspace& baseline);

}  // namespace alfi::core
