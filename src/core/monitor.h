// Runtime monitors (paper §IV.B: "monitoring capabilities (enabling the
// detection of NaN or Inf values and facilitating the integration of
// custom monitoring)").
//
// A ModelMonitor attaches observation hooks to every leaf layer of a
// model.  NaN / Inf detection feeds the DUE (Detected and Uncorrectable
// Error) KPI; custom monitors receive every layer output and can record
// arbitrary signals.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/module.h"
#include "nn/workspace.h"
#include "util/metrics.h"

namespace alfi::core {

/// ModelMonitor doubles as a differential-inference PrefixObserver:
/// when a workspace replays a leaf from the fault-free baseline, the
/// monitor re-runs its NaN/Inf scan (and custom monitors) on the cached
/// output, so detection state and `monitor.*` counters stay identical
/// to a full recompute.
class ModelMonitor : public nn::PrefixObserver {
 public:
  /// Observes a layer output: (module path, output tensor).
  using CustomMonitor = std::function<void(const std::string& path, const Tensor& output)>;

  explicit ModelMonitor(nn::Module& model);
  ~ModelMonitor();
  ModelMonitor(const ModelMonitor&) = delete;
  ModelMonitor& operator=(const ModelMonitor&) = delete;

  /// Clears detection state between inferences.
  void reset();

  bool nan_detected() const { return !nan_layers_.empty(); }
  bool inf_detected() const { return !inf_layers_.empty(); }
  /// DUE in the paper's sense: the corruption announced itself via
  /// NaN/Inf instead of silently altering the output.
  bool due_detected() const { return nan_detected() || inf_detected(); }

  /// Paths of layers whose output contained NaN (first offender first).
  const std::vector<std::string>& nan_layers() const { return nan_layers_; }
  const std::vector<std::string>& inf_layers() const { return inf_layers_; }

  /// Registers an additional custom monitor (runs on every leaf layer
  /// output after the NaN/Inf scan).
  void add_custom(CustomMonitor monitor);

  // ---- per-slot mode (packed campaign batches, DESIGN.md §12) --------------
  /// Scans each of the `slots` leading dim-0 rows of every observed
  /// output independently, so per-slot detection flags and `monitor.*`
  /// counter increments equal those of `slots` separate single-sample
  /// inferences.  Every observed output must then have dim(0) == slots.
  /// 0 (the default) restores whole-tensor scanning.  reset() clears
  /// the flags but keeps the mode; custom monitors still receive the
  /// whole packed tensor once per layer.
  void set_slot_count(std::size_t slots);

  /// Slot-resolved due_detected(); only meaningful in per-slot mode.
  bool slot_due(std::size_t slot) const;

  /// Mirrors detections into `registry`: totals under
  /// `monitor.nan_total` / `monitor.inf_total` plus per-layer counters
  /// `monitor.nan.<path>` / `monitor.inf.<path>`.  The totals are
  /// pre-registered here so the counter set is stable even when a run
  /// detects nothing.  Pass nullptr to detach.
  void set_metrics(util::MetricsRegistry* registry);

  /// PrefixObserver: replays the observation hook for a skipped leaf.
  void on_replay(const nn::Module& module, const Tensor& cached) override;

 private:
  void observe(const std::string& path, const Tensor& output);

  struct Attachment {
    nn::Module* module;
    nn::HookHandle handle;
  };
  std::vector<Attachment> attachments_;
  std::unordered_map<const nn::Module*, std::string> paths_;
  std::vector<std::string> nan_layers_;
  std::vector<std::string> inf_layers_;
  std::size_t slot_count_ = 0;         // 0 = whole-tensor scanning
  std::vector<std::uint8_t> slot_nan_;
  std::vector<std::uint8_t> slot_inf_;
  std::vector<CustomMonitor> custom_;
  util::MetricsRegistry* metrics_ = nullptr;
  util::Counter* nan_total_ = nullptr;
  util::Counter* inf_total_ = nullptr;
};

}  // namespace alfi::core
