// FaultMatrix: the pre-generated set of faults for a whole campaign,
// plus its binary persistence format.
//
// Pre-generating *all* faults before the inference run (and persisting
// them) is the paper's central validation-efficiency mechanism: "the
// identical set of faults can be utilized across various experiments to
// evaluate the impact of model modifications on fault mitigation"
// (§IV.B).  A second file of InjectionRecords is written after the run.
#pragma once

#include <vector>

#include "core/fault.h"
#include "io/json.h"

namespace alfi::core {

class FaultMatrix {
 public:
  FaultMatrix() = default;
  explicit FaultMatrix(std::vector<Fault> faults) : faults_(std::move(faults)) {}

  std::size_t size() const { return faults_.size(); }
  bool empty() const { return faults_.empty(); }
  const Fault& at(std::size_t column) const;
  const std::vector<Fault>& faults() const { return faults_; }

  void push_back(Fault fault) { faults_.push_back(fault); }

  /// Columns [begin, begin+count) as a sub-matrix (used by the iterator
  /// to hand out max_faults_per_image faults per step).
  std::vector<Fault> slice(std::size_t begin, std::size_t count) const;

  /// Table I view: row-major 7xN matrix (Batch, Layer, Channel, Depth,
  /// Height, Width, Value) for neuron faults; weight faults map
  /// (Layer, OutCh, InCh, Depth, Height, Width, Value).
  std::vector<std::vector<std::int64_t>> table_rows() const;

  // ---- persistence -----------------------------------------------------------
  void save(const std::string& path) const;
  static FaultMatrix load(const std::string& path);

  io::Json to_json() const;

  bool operator==(const FaultMatrix& other) const { return faults_ == other.faults_; }

 private:
  std::vector<Fault> faults_;
};

bool operator==(const Fault& a, const Fault& b);

/// Persistence of the post-run corruption trace.
void save_injection_records(const std::vector<InjectionRecord>& records,
                            const std::string& path);
std::vector<InjectionRecord> load_injection_records(const std::string& path);

}  // namespace alfi::core
