#include "core/steering.h"

#include <algorithm>
#include <functional>
#include <map>
#include <tuple>

#include "util/error.h"
#include "util/wilson.h"

namespace alfi::core {

namespace {

/// Cell identity tuple: the map key that groups units into strata and
/// the deterministic tiebreak order everywhere cells are sorted.
std::tuple<std::int64_t, int, int> cell_id(const SteeringCellKey& key) {
  return {key.layer, key.bit_pos, static_cast<int>(key.value_type)};
}

}  // namespace

SteeringPolicy::SteeringPolicy(std::vector<SteeringCellKey> unit_cells,
                               SteeringOptions options)
    : options_(options), total_units_(unit_cells.size()) {
  ALFI_CHECK(!unit_cells.empty(),
             "steering requires at least one work unit with a cell key");
  ALFI_CHECK(options_.z > 0.0, "steering z must be positive");
  ALFI_CHECK(options_.half_width > 0.0, "steering half-width must be positive");

  // Group units into cells.  std::map keeps cells ordered by identity,
  // and units arrive in ascending t, so each cell's unit list is
  // ascending — both orders are part of the deterministic plan.
  std::map<std::tuple<std::int64_t, int, int>, std::size_t> index;
  unit_cell_.resize(unit_cells.size());
  for (std::size_t t = 0; t < unit_cells.size(); ++t) {
    const auto id = cell_id(unit_cells[t]);
    auto [it, inserted] = index.emplace(id, cells_.size());
    if (inserted) {
      Cell cell;
      cell.key = unit_cells[t];
      cells_.push_back(std::move(cell));
    }
    cells_[it->second].units.push_back(t);
    unit_cell_[t] = it->second;
  }
  std::vector<Cell> ordered;
  ordered.reserve(cells_.size());
  std::vector<std::size_t> remap(cells_.size());
  for (const auto& [id, old_index] : index) {
    (void)id;
    remap[old_index] = ordered.size();
    ordered.push_back(std::move(cells_[old_index]));
  }
  cells_ = std::move(ordered);
  for (std::size_t& c : unit_cell_) c = remap[c];
}

double SteeringPolicy::cell_half_width(const Cell& cell) const {
  return util::wilson_interval(cell.sdc, cell.applied(), options_.z)
      .half_width();
}

bool SteeringPolicy::cell_decided(const Cell& cell) const {
  if (!options_.steer) return false;
  if (cell.applied() < options_.min_cell_samples) return false;
  return cell_half_width(cell) <= options_.half_width;
}

std::vector<std::size_t> SteeringPolicy::plan_round() {
  const std::size_t round_size =
      options_.round_units > 0
          ? options_.round_units
          : std::max<std::size_t>(1, total_units_ / 8);
  std::size_t quota = round_size;
  if (options_.budget > 0) {
    if (planned_ >= options_.budget) return {};
    quota = std::min(quota, options_.budget - planned_);
  }

  // Widest-interval-first over undecided cells that still have
  // unplanned units, with the cell identity as deterministic tiebreak.
  std::vector<std::size_t> order;
  order.reserve(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    if (cell.exhausted() || cell_decided(cell)) continue;
    order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    const double wa = cell_half_width(cells_[a]);
    const double wb = cell_half_width(cells_[b]);
    if (wa != wb) return wa > wb;
    return cell_id(cells_[a].key) < cell_id(cells_[b].key);
  });

  // Round-robin one unit per cell per pass so the round spreads across
  // every undecided cell before deepening any single one.
  std::vector<std::size_t> plan;
  plan.reserve(quota);
  while (plan.size() < quota) {
    bool any = false;
    for (const std::size_t c : order) {
      if (plan.size() >= quota) break;
      Cell& cell = cells_[c];
      if (cell.exhausted()) continue;
      plan.push_back(cell.units[cell.next_unit++]);
      any = true;
    }
    if (!any) break;
  }
  planned_ += plan.size();
  std::sort(plan.begin(), plan.end());
  return plan;
}

void SteeringPolicy::record(std::size_t unit, const SteeringUnitOutcome& outcome) {
  ALFI_CHECK(unit < unit_cell_.size(), "steering outcome for unknown unit");
  Cell& cell = cells_[unit_cell_[unit]];
  ++cell.sampled;
  ++recorded_;
  if (outcome.skipped) {
    ++cell.skipped;
    return;
  }
  if (outcome.sdc) ++cell.sdc;
  if (outcome.due) ++cell.due;
}

namespace {

/// Shared rate/interval arithmetic for cells and group aggregates.
struct OutcomeCounts {
  std::size_t sampled = 0;
  std::size_t skipped = 0;
  std::size_t sdc = 0;
  std::size_t due = 0;

  std::size_t applied() const { return sampled - skipped; }
  double rate(std::size_t count) const {
    return applied() == 0 ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(applied());
  }
};

void fill_group(io::VulnerabilityGroupEntry& entry, const OutcomeCounts& counts,
                double z) {
  entry.sampled = counts.sampled;
  entry.skipped = counts.skipped;
  entry.sdc = counts.sdc;
  entry.due = counts.due;
  entry.sdc_rate = counts.rate(counts.sdc);
  entry.due_rate = counts.rate(counts.due);
  const util::WilsonInterval interval =
      util::wilson_interval(counts.sdc, counts.applied(), z);
  entry.sdc_lo = interval.lo;
  entry.sdc_hi = interval.hi;
}

/// Rate-descending ranking with a deterministic key tiebreak.
template <typename Key>
std::vector<io::VulnerabilityGroupEntry> rank_groups(
    const std::map<Key, OutcomeCounts>& groups, double z,
    const std::function<std::string(const Key&)>& key_name) {
  std::vector<std::pair<Key, io::VulnerabilityGroupEntry>> ranked;
  ranked.reserve(groups.size());
  for (const auto& [key, counts] : groups) {
    io::VulnerabilityGroupEntry entry;
    entry.key = key_name(key);
    fill_group(entry, counts, z);
    ranked.emplace_back(key, std::move(entry));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.sdc_rate != b.second.sdc_rate) {
      return a.second.sdc_rate > b.second.sdc_rate;
    }
    return a.first < b.first;  // Key order, not string order: 9 before 10
  });
  std::vector<io::VulnerabilityGroupEntry> out;
  out.reserve(ranked.size());
  for (auto& [key, entry] : ranked) {
    (void)key;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

io::VulnerabilityMapFile SteeringPolicy::build_map(
    const std::string& task_kind, const std::string& model,
    std::size_t exhaustive_units) const {
  io::VulnerabilityMapFile map;
  map.task_kind = task_kind;
  map.model = model;
  map.budget_requested = options_.budget;
  map.units_executed = recorded_;
  map.exhaustive_units = exhaustive_units;
  map.unit_fraction = exhaustive_units == 0
                          ? 0.0
                          : static_cast<double>(recorded_) /
                                static_cast<double>(exhaustive_units);
  map.z = options_.z;
  map.half_width = options_.half_width;
  map.min_cell_samples = options_.min_cell_samples;
  map.steer = options_.steer;

  std::map<std::int64_t, OutcomeCounts> by_layer;
  std::map<int, OutcomeCounts> by_bit;
  std::map<std::string, OutcomeCounts> by_role;
  map.cells.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    io::VulnerabilityCellEntry entry;
    entry.layer = cell.key.layer;
    entry.bit_pos = cell.key.bit_pos;
    entry.fault_type = to_string(cell.key.value_type);
    entry.role = cell.key.role;
    entry.sampled = cell.sampled;
    entry.skipped = cell.skipped;
    entry.sdc = cell.sdc;
    entry.due = cell.due;
    const OutcomeCounts counts{cell.sampled, cell.skipped, cell.sdc, cell.due};
    entry.sdc_rate = counts.rate(cell.sdc);
    entry.due_rate = counts.rate(cell.due);
    const util::WilsonInterval interval =
        util::wilson_interval(cell.sdc, cell.applied(), options_.z);
    entry.sdc_lo = interval.lo;
    entry.sdc_hi = interval.hi;
    entry.decided = cell_decided(cell);
    map.cells.push_back(std::move(entry));

    auto accumulate = [&](OutcomeCounts& group) {
      group.sampled += cell.sampled;
      group.skipped += cell.skipped;
      group.sdc += cell.sdc;
      group.due += cell.due;
    };
    accumulate(by_layer[cell.key.layer]);
    if (cell.key.bit_pos >= 0) accumulate(by_bit[cell.key.bit_pos]);
    if (!cell.key.role.empty()) accumulate(by_role[cell.key.role]);
  }
  std::sort(map.cells.begin(), map.cells.end(),
            [](const io::VulnerabilityCellEntry& a,
               const io::VulnerabilityCellEntry& b) {
              if (a.sdc_rate != b.sdc_rate) return a.sdc_rate > b.sdc_rate;
              return std::tuple(a.layer, a.bit_pos, a.fault_type) <
                     std::tuple(b.layer, b.bit_pos, b.fault_type);
            });

  map.layers = rank_groups<std::int64_t>(
      by_layer, options_.z,
      [](const std::int64_t& layer) { return std::to_string(layer); });
  map.bits = rank_groups<int>(by_bit, options_.z, [](const int& bit) {
    return std::to_string(bit);
  });
  map.roles = rank_groups<std::string>(
      by_role, options_.z, [](const std::string& role) { return role; });
  return map;
}

}  // namespace alfi::core
