// TestErrorModelsObjDet — the high-level object-detection campaign
// harness (paper §V.B / §V.F.2, test_error_models_objdet.py and the
// Fig. 3 submodule).
//
// Produces the three output sets of §V.F.2:
//   a) ground truth + meta-files: COCO-format ground-truth JSON and the
//      effective scenario YAML,
//   b) binary fault files (matrix + post-run trace),
//   c) intermediate result JSONs (COCO results format) for the original,
//      corrupted and hardened model, plus mAP / IVMOD summaries.
//
// Images are evaluated one at a time so DUE (NaN/Inf) and IVMOD_SDE
// (changed detections) verdicts attribute exactly to one image and one
// fault group; per_batch fault groups are replayed by remapping each
// fault's batch slot onto the matching sequential image.
//
// Because every image is an independent inference, the whole campaign
// is unit-addressable for every injection policy: unit t maps to
// (epoch, image) and its fault group by closed-form arithmetic.  The
// harness therefore runs entirely through core::CampaignExecutor as a
// CampaignTask — gaining parallel --jobs (per-worker Detector::clone()
// replicas) and crash-safe checkpoint/resume for free.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/campaign_task.h"
#include "core/kpi.h"
#include "core/mitigation.h"
#include "core/monitor.h"
#include "core/wrapper.h"
#include "data/dataloader.h"
#include "nn/quantize.h"
#include "util/metrics.h"

namespace alfi::core {

struct ObjDetCampaignConfig : CampaignConfigBase {
  ObjDetCampaignConfig() { model_name = "detector"; }

  std::size_t calibration_images = 16;
  float conf_threshold = 0.4f;
};

struct ObjDetCampaignResult {
  IvmodKpis ivmod;
  /// Injector-level skip backstop.  Per-batch fault slots are remapped
  /// onto the actual batch occupancy before arming (slot % occupancy),
  /// so every drawn fault lands on a scored image and this stays 0 for
  /// campaign-generated matrices.
  std::size_t skipped_injections = 0;
  CocoSummary orig_map;
  CocoSummary faulty_map;
  CocoSummary resil_map;  // valid only when mitigation was configured
  std::string ground_truth_json;
  std::string scenario_yml;
  std::string fault_bin;
  std::string trace_bin;
  std::string orig_json;
  std::string corr_json;
  std::string resil_json;
};

class ObjDetUnitRunner;

class TestErrorModelsObjDet final : public CampaignTask {
 public:
  TestErrorModelsObjDet(models::Detector& detector,
                        const data::DetectionDataset& dataset, Scenario scenario,
                        ObjDetCampaignConfig config);

  /// Runs the campaign — the paper's test_rand_ObjDet_SBFs_inj.
  ObjDetCampaignResult run();

  PtfiWrap& wrapper() { return wrapper_; }

  /// Campaign telemetry, populated during run().  Written to
  /// config.metrics_path (when set) and readable afterwards regardless.
  const util::MetricsRegistry& metrics() const { return metrics_; }

  // ---- CampaignTask ----------------------------------------------------------
  std::string task_kind() const override { return "objdet"; }
  const Scenario& task_scenario() const override { return wrapper_.get_scenario(); }
  const CampaignConfigBase& base_config() const override { return config_; }
  std::size_t unit_count() const override;
  std::uint64_t fingerprint() const override;
  void prepare() override;
  std::unique_ptr<CampaignUnitRunner> make_unit_runner(bool shared_model) override;
  /// Unbounded for neuron-fault campaigns (each unit's addressed faults
  /// arm on its own batch slot); 1 when any fault targets weights.
  std::size_t max_unit_pack() const override;
  /// Unit t's (layer, bit, fault-type) stratum from its addressed
  /// group's first fault.  Every injection policy is unit-addressable
  /// here, so detection campaigns steer under all of them.
  std::vector<SteeringCellKey> steering_cells() const override;
  /// IVMOD verdicts straight from the unit payload (due/sde flags and
  /// the trailing record count).
  SteeringUnitOutcome classify_unit(std::size_t t,
                                    const std::string& payload) const override;
  void absorb_unit(std::size_t t, const std::string& payload) override;
  void finalize() override;

 private:
  friend class ObjDetUnitRunner;

  models::Detector& detector_;
  const data::DetectionDataset& dataset_;
  ObjDetCampaignConfig config_;
  // Declared before wrapper_: the wrapper's injector reports restore
  // counts while being destroyed, so the registry must outlive it.
  util::MetricsRegistry metrics_;
  PtfiWrap wrapper_;

  // Campaign state between prepare() and finalize().
  RangeMap bounds_;
  /// Stored-weight representation of the primary network (stored
  /// numeric types only).  Built once — rebuilding from the
  /// already-dequantized values on an idempotent re-prepare could round
  /// scales differently.  Replica runners copy it bit-exact.
  std::optional<nn::StoredWeightStore> store_;
  std::string resolved_backend_;  ///< registry name of what actually ran
  IvmodKpis ivmod_;
  std::vector<std::int64_t> image_ids_;
  std::vector<std::vector<data::Annotation>> ground_truth_;
  std::vector<std::vector<models::Detection>> orig_all_, corr_all_, resil_all_;
  std::vector<InjectionRecord> trace_;
  ObjDetCampaignResult result_;
};

}  // namespace alfi::core
