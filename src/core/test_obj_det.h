// TestErrorModelsObjDet — the high-level object-detection campaign
// harness (paper §V.B / §V.F.2, test_error_models_objdet.py and the
// Fig. 3 submodule).
//
// Produces the three output sets of §V.F.2:
//   a) ground truth + meta-files: COCO-format ground-truth JSON and the
//      effective scenario YAML,
//   b) binary fault files (matrix + post-run trace),
//   c) intermediate result JSONs (COCO results format) for the original,
//      corrupted and hardened model, plus mAP / IVMOD summaries.
//
// Images are evaluated one at a time so DUE (NaN/Inf) and IVMOD_SDE
// (changed detections) verdicts attribute exactly to one image and one
// fault group; per_batch fault groups are replayed by remapping each
// fault's batch slot onto the matching sequential image.
#pragma once

#include <optional>
#include <string>

#include "core/kpi.h"
#include "core/mitigation.h"
#include "core/monitor.h"
#include "core/wrapper.h"
#include "data/dataloader.h"

namespace alfi::core {

struct ObjDetCampaignConfig {
  std::string model_name = "detector";
  std::string output_dir;
  std::string fault_file;
  std::optional<MitigationKind> mitigation;
  std::size_t calibration_images = 16;
  float conf_threshold = 0.4f;
};

struct ObjDetCampaignResult {
  IvmodKpis ivmod;
  CocoSummary orig_map;
  CocoSummary faulty_map;
  CocoSummary resil_map;  // valid only when mitigation was configured
  std::string ground_truth_json;
  std::string scenario_yml;
  std::string fault_bin;
  std::string trace_bin;
  std::string orig_json;
  std::string corr_json;
  std::string resil_json;
};

class TestErrorModelsObjDet {
 public:
  TestErrorModelsObjDet(models::Detector& detector,
                        const data::DetectionDataset& dataset, Scenario scenario,
                        ObjDetCampaignConfig config);

  /// Runs the campaign — the paper's test_rand_ObjDet_SBFs_inj.
  ObjDetCampaignResult run();

  PtfiWrap& wrapper() { return wrapper_; }

 private:
  models::Detector& detector_;
  const data::DetectionDataset& dataset_;
  ObjDetCampaignConfig config_;
  PtfiWrap wrapper_;
};

}  // namespace alfi::core
