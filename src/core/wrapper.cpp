#include "core/wrapper.h"

namespace alfi::core {

PtfiWrap::PtfiWrap(nn::Module& model, Scenario scenario, const Tensor& sample_input)
    : model_(model), scenario_(std::move(scenario)), rng_(scenario_.rnd_seed) {
  scenario_.validate();
  profile_ = std::make_unique<ModelProfile>(model_, sample_input);
  injector_ = std::make_unique<Injector>(model_, *profile_, scenario_.duration);
  Rng generation_stream = rng_.fork();
  faults_ = generate_fault_matrix(scenario_, *profile_, generation_stream);
}

PtfiWrap::PtfiWrap(nn::Module& model, const std::string& scenario_path,
                   const Tensor& sample_input)
    : PtfiWrap(model, Scenario::from_yaml_file(scenario_path), sample_input) {}

void PtfiWrap::set_scenario(Scenario scenario) {
  scenario.validate();
  injector_->disarm();
  injector_->restore_all_weights();
  scenario_ = std::move(scenario);
  injector_->set_duration(scenario_.duration);
  // A fresh fork per set_scenario keeps fault sets of successive sweep
  // steps independent while the whole sweep stays reproducible from the
  // original seed.
  Rng generation_stream = rng_.fork();
  faults_ = generate_fault_matrix(scenario_, *profile_, generation_stream);
  ++matrix_generation_;
}

void PtfiWrap::load_fault_matrix(const std::string& path) {
  injector_->disarm();
  faults_ = FaultMatrix::load(path);
  ++matrix_generation_;
}

void PtfiWrap::save_fault_matrix(const std::string& path) const {
  faults_.save(path);
}

void PtfiWrap::set_fault_matrix(FaultMatrix faults) {
  injector_->disarm();
  faults_ = std::move(faults);
  ++matrix_generation_;
}

FaultModelIterator::FaultModelIterator(PtfiWrap& wrapper)
    : wrapper_(&wrapper), generation_(wrapper.matrix_generation_) {}

bool FaultModelIterator::stale() const {
  return generation_ != wrapper_->matrix_generation_;
}

std::size_t FaultModelIterator::remaining() const {
  // A stale iterator's position is meaningless against the new matrix;
  // report exhaustion instead of slicing out of range.  The same clamp
  // protects a position past the end from size_t underflow.
  if (stale()) return 0;
  const std::size_t size = wrapper_->faults_.size();
  return position_ >= size ? 0 : size - position_;
}

void FaultModelIterator::reset() {
  wrapper_->injector_->disarm();
  position_ = 0;
  step_ = 0;
  generation_ = wrapper_->matrix_generation_;
}

nn::Module& FaultModelIterator::next() {
  ALFI_CHECK(!stale(),
             "fault iterator invalidated: the wrapper's fault matrix was "
             "regenerated (set_scenario/load_fault_matrix); call reset()");
  const std::size_t group = wrapper_->scenario_.max_faults_per_image;
  ALFI_CHECK(remaining() >= group,
             "fault matrix exhausted: increase dataset_size/num_runs or reset()");
  wrapper_->injector_->disarm();
  wrapper_->injector_->set_inference_index(step_++);
  wrapper_->injector_->arm(wrapper_->faults_.slice(position_, group));
  position_ += group;
  return wrapper_->model_;
}

nn::Module& FaultModelIterator::next_for_window(std::size_t occupancy) {
  ALFI_CHECK(!stale(),
             "fault iterator invalidated: the wrapper's fault matrix was "
             "regenerated (set_scenario/load_fault_matrix); call reset()");
  ALFI_CHECK(occupancy > 0, "window occupancy must be positive");
  const std::size_t group = wrapper_->scenario_.max_faults_per_image;
  ALFI_CHECK(remaining() >= group,
             "fault matrix exhausted: increase dataset_size/num_runs or reset()");
  wrapper_->injector_->disarm();
  wrapper_->injector_->set_inference_index(step_++);

  std::vector<Fault> faults = wrapper_->faults_.slice(position_, group);
  for (Fault& fault : faults) {
    if (fault.target == FaultTarget::kNeurons && fault.batch >= 0) {
      fault.batch %= static_cast<std::int64_t>(occupancy);
    }
  }
  wrapper_->injector_->arm(std::move(faults));
  position_ += group;
  return wrapper_->model_;
}

nn::Module& FaultModelIterator::next_for_batch(std::size_t batch_size) {
  ALFI_CHECK(!stale(),
             "fault iterator invalidated: the wrapper's fault matrix was "
             "regenerated (set_scenario/load_fault_matrix); call reset()");
  ALFI_CHECK(batch_size > 0, "batch size must be positive");
  const std::size_t per_image = wrapper_->scenario_.max_faults_per_image;
  const std::size_t group = batch_size * per_image;
  ALFI_CHECK(remaining() >= group,
             "fault matrix exhausted: increase dataset_size/num_runs or reset()");
  wrapper_->injector_->disarm();
  wrapper_->injector_->set_inference_index(step_++);

  std::vector<Fault> faults = wrapper_->faults_.slice(position_, group);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i].target == FaultTarget::kNeurons) {
      faults[i].batch = static_cast<std::int64_t>(i / per_image);
    }
  }
  wrapper_->injector_->arm(std::move(faults));
  position_ += group;
  return wrapper_->model_;
}

}  // namespace alfi::core
