#include "core/scenario.h"

#include "tensor/backend.h"
#include "util/string_util.h"

namespace alfi::core {

const char* to_string(FaultTarget target) {
  switch (target) {
    case FaultTarget::kNeurons: return "neurons";
    case FaultTarget::kWeights: return "weights";
  }
  return "?";
}

const char* to_string(ValueType type) {
  switch (type) {
    case ValueType::kBitFlip: return "bitflip";
    case ValueType::kStuckAt0: return "stuck_at_0";
    case ValueType::kStuckAt1: return "stuck_at_1";
    case ValueType::kRandomValue: return "random_value";
  }
  return "?";
}

const char* to_string(InjectionPolicy policy) {
  switch (policy) {
    case InjectionPolicy::kPerImage: return "per_image";
    case InjectionPolicy::kPerBatch: return "per_batch";
    case InjectionPolicy::kPerEpoch: return "per_epoch";
  }
  return "?";
}

const char* to_string(FaultDuration duration) {
  switch (duration) {
    case FaultDuration::kTransient: return "transient";
    case FaultDuration::kPermanent: return "permanent";
  }
  return "?";
}

FaultTarget fault_target_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "neurons" || t == "neuron") return FaultTarget::kNeurons;
  if (t == "weights" || t == "weight") return FaultTarget::kWeights;
  throw ConfigError("unknown fault target: " + text);
}

ValueType value_type_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "bitflip" || t == "bit_flip") return ValueType::kBitFlip;
  if (t == "stuck_at_0" || t == "stuckat0") return ValueType::kStuckAt0;
  if (t == "stuck_at_1" || t == "stuckat1") return ValueType::kStuckAt1;
  if (t == "random_value" || t == "number") return ValueType::kRandomValue;
  throw ConfigError("unknown value type: " + text);
}

InjectionPolicy injection_policy_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "per_image") return InjectionPolicy::kPerImage;
  if (t == "per_batch") return InjectionPolicy::kPerBatch;
  if (t == "per_epoch") return InjectionPolicy::kPerEpoch;
  throw ConfigError("unknown injection policy: " + text);
}

FaultDuration fault_duration_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "transient") return FaultDuration::kTransient;
  if (t == "permanent") return FaultDuration::kPermanent;
  throw ConfigError("unknown fault duration: " + text);
}

namespace {

nn::LayerKind layer_kind_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "conv2d") return nn::LayerKind::kConv2d;
  if (t == "conv3d") return nn::LayerKind::kConv3d;
  if (t == "linear" || t == "fcc" || t == "fully_connected") {
    return nn::LayerKind::kLinear;
  }
  if (t == "seq_linear") return nn::LayerKind::kSeqLinear;
  if (t == "embedding") return nn::LayerKind::kEmbedding;
  if (t == "attention") return nn::LayerKind::kAttention;
  if (t == "residual") return nn::LayerKind::kResidual;
  if (t == "layernorm") return nn::LayerKind::kLayerNorm;
  throw ConfigError("unknown layer type: " + text);
}

}  // namespace

std::vector<std::string> Scenario::validation_errors() const {
  std::vector<std::string> errors;
  if (rnd_bit_range_lo < 0 || rnd_bit_range_hi > 31 ||
      rnd_bit_range_lo > rnd_bit_range_hi) {
    errors.push_back("rnd_bit_range must satisfy 0 <= lo <= hi <= 31");
  }
  if (rnd_value_min > rnd_value_max) {
    errors.push_back("rnd_value_range must satisfy min <= max");
  }
  if (max_faults_per_image == 0) {
    errors.push_back("max_faults_per_image must be at least 1");
  }
  if (dataset_size == 0) errors.push_back("dataset_size must be positive");
  if (num_runs == 0) errors.push_back("num_runs must be positive");
  if (batch_size == 0) errors.push_back("batch_size must be positive");
  if (layer_range && layer_range->first > layer_range->second) {
    errors.push_back("layer_range must satisfy first <= last");
  }
  for (const nn::LayerKind kind : layer_types) {
    if (kind == nn::LayerKind::kOther) {
      errors.push_back(
          "layer_types may only list conv2d, conv3d, linear, seq_linear, "
          "embedding, attention, residual, layernorm");
      break;
    }
  }
  if (!tensor::is_known_backend_name(backend)) {
    errors.push_back("unknown backend '" + backend +
                     "' (expected ref, avx2 or auto)");
  }
  if (target == FaultTarget::kWeights && nn::is_stored_type(numeric_type) &&
      value_type != ValueType::kRandomValue &&
      rnd_bit_range_hi >= nn::storage_bits(numeric_type)) {
    errors.push_back(
        "rnd_bit_range exceeds the " +
        std::to_string(nn::storage_bits(numeric_type)) +
        "-bit stored representation of " + nn::to_string(numeric_type) +
        " weights (stored-type weight faults index stored-code bits)");
  }
  return errors;
}

void Scenario::validate() const {
  const std::vector<std::string> errors = validation_errors();
  if (errors.empty()) return;
  std::string message = "invalid scenario:";
  for (const std::string& error : errors) message += "\n  - " + error;
  throw ConfigError(message);
}

bool Scenario::allows_layer_kind(nn::LayerKind kind) const {
  if (kind == nn::LayerKind::kOther) return false;
  if (layer_types.empty()) return true;
  for (const nn::LayerKind allowed : layer_types) {
    if (allowed == kind) return true;
  }
  return false;
}

Scenario Scenario::from_yaml(const io::Json& tree) {
  Scenario s;
  if (tree.contains("fault_injection")) {
    const io::Json& fi = tree.at("fault_injection");
    if (fi.contains("target")) s.target = fault_target_from_string(fi.at("target").as_string());
    if (fi.contains("value_type")) {
      s.value_type = value_type_from_string(fi.at("value_type").as_string());
    }
    if (fi.contains("rnd_bit_range")) {
      const auto& range = fi.at("rnd_bit_range").as_array();
      if (range.size() != 2) throw ConfigError("rnd_bit_range needs two entries");
      s.rnd_bit_range_lo = static_cast<int>(range[0].as_int());
      s.rnd_bit_range_hi = static_cast<int>(range[1].as_int());
    }
    if (fi.contains("rnd_value_range")) {
      const auto& range = fi.at("rnd_value_range").as_array();
      if (range.size() != 2) throw ConfigError("rnd_value_range needs two entries");
      s.rnd_value_min = static_cast<float>(range[0].as_number());
      s.rnd_value_max = static_cast<float>(range[1].as_number());
    }
    if (fi.contains("duration")) {
      s.duration = fault_duration_from_string(fi.at("duration").as_string());
    }
    if (fi.contains("inj_policy")) {
      s.inj_policy = injection_policy_from_string(fi.at("inj_policy").as_string());
    }
    if (fi.contains("max_faults_per_image")) {
      s.max_faults_per_image =
          static_cast<std::size_t>(fi.at("max_faults_per_image").as_int());
    }
    if (fi.contains("layer_types")) {
      s.layer_types.clear();
      for (const io::Json& entry : fi.at("layer_types").as_array()) {
        s.layer_types.push_back(layer_kind_from_string(entry.as_string()));
      }
    }
    if (fi.contains("layer_range")) {
      const auto& range = fi.at("layer_range").as_array();
      if (range.empty()) {
        s.layer_range.reset();
      } else {
        if (range.size() != 2) throw ConfigError("layer_range needs 0 or 2 entries");
        s.layer_range = {static_cast<std::size_t>(range[0].as_int()),
                         static_cast<std::size_t>(range[1].as_int())};
      }
    }
    if (fi.contains("weighted_layer_selection")) {
      s.weighted_layer_selection = fi.at("weighted_layer_selection").as_bool();
    }
  }
  if (tree.contains("inference")) {
    const io::Json& inf = tree.at("inference");
    if (inf.contains("backend")) s.backend = inf.at("backend").as_string();
    if (inf.contains("numeric_type")) {
      const std::string name = inf.at("numeric_type").as_string();
      if (!nn::numeric_type_from_string(name, s.numeric_type)) {
        throw ConfigError("unknown numeric type: " + name);
      }
    }
  }
  if (tree.contains("run")) {
    const io::Json& run = tree.at("run");
    if (run.contains("dataset_size")) {
      s.dataset_size = static_cast<std::size_t>(run.at("dataset_size").as_int());
    }
    if (run.contains("num_runs")) {
      s.num_runs = static_cast<std::size_t>(run.at("num_runs").as_int());
    }
    if (run.contains("batch_size")) {
      s.batch_size = static_cast<std::size_t>(run.at("batch_size").as_int());
    }
    if (run.contains("rnd_seed")) {
      s.rnd_seed = static_cast<std::uint64_t>(run.at("rnd_seed").as_int());
    }
  }
  s.validate();
  return s;
}

Scenario Scenario::from_yaml_file(const std::string& path) {
  return from_yaml(io::read_yaml_file(path));
}

io::Json Scenario::to_yaml() const {
  io::Json tree = io::Json::object();
  io::Json fi = io::Json::object();
  fi["target"] = io::Json(to_string(target));
  fi["value_type"] = io::Json(to_string(value_type));
  io::Json bit_range = io::Json::array();
  bit_range.push_back(io::Json(rnd_bit_range_lo));
  bit_range.push_back(io::Json(rnd_bit_range_hi));
  fi["rnd_bit_range"] = bit_range;
  io::Json value_range = io::Json::array();
  value_range.push_back(io::Json(static_cast<double>(rnd_value_min)));
  value_range.push_back(io::Json(static_cast<double>(rnd_value_max)));
  fi["rnd_value_range"] = value_range;
  fi["duration"] = io::Json(to_string(duration));
  fi["inj_policy"] = io::Json(to_string(inj_policy));
  fi["max_faults_per_image"] = io::Json(max_faults_per_image);
  io::Json types = io::Json::array();
  for (const nn::LayerKind kind : layer_types) {
    types.push_back(io::Json(nn::layer_kind_name(kind)));
  }
  fi["layer_types"] = types;
  io::Json range = io::Json::array();
  if (layer_range) {
    range.push_back(io::Json(layer_range->first));
    range.push_back(io::Json(layer_range->second));
  }
  fi["layer_range"] = range;
  fi["weighted_layer_selection"] = io::Json(weighted_layer_selection);
  tree["fault_injection"] = fi;

  // The inference section is emitted only when it deviates from the
  // defaults (ref backend, fp32 weights).  Default scenarios therefore
  // serialize byte-identically to earlier framework versions, which
  // keeps campaign fingerprints — and with them journals, checkpoints
  // and resumability of existing runs — unchanged.
  const bool default_backend = backend.empty() || backend == "ref";
  if (!default_backend || numeric_type != nn::NumericType::kFloat32) {
    io::Json inf = io::Json::object();
    inf["backend"] = io::Json(default_backend ? "ref" : backend);
    inf["numeric_type"] = io::Json(nn::to_string(numeric_type));
    tree["inference"] = inf;
  }

  io::Json run = io::Json::object();
  run["dataset_size"] = io::Json(dataset_size);
  run["num_runs"] = io::Json(num_runs);
  run["batch_size"] = io::Json(batch_size);
  run["rnd_seed"] = io::Json(rnd_seed);
  tree["run"] = run;
  return tree;
}

void Scenario::save_yaml_file(const std::string& path) const {
  io::write_yaml_file(path, to_yaml());
}

ScenarioBuilder ScenarioBuilder::from(const Scenario& scenario) {
  ScenarioBuilder builder;
  builder.s_ = scenario;
  return builder;
}

ScenarioBuilder& ScenarioBuilder::target(FaultTarget target) {
  s_.target = target;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::value_type(ValueType type) {
  s_.value_type = type;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::bit_range(int lo, int hi) {
  s_.rnd_bit_range_lo = lo;
  s_.rnd_bit_range_hi = hi;
  bit_range_set_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::value_range(float min, float max) {
  s_.rnd_value_min = min;
  s_.rnd_value_max = max;
  value_range_set_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duration(FaultDuration duration) {
  s_.duration = duration;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::injection_policy(InjectionPolicy policy) {
  s_.inj_policy = policy;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::max_faults_per_image(std::size_t count) {
  s_.max_faults_per_image = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::layer_types(std::vector<nn::LayerKind> kinds) {
  s_.layer_types = std::move(kinds);
  layer_types_set_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::layer_range(std::size_t first,
                                              std::size_t last) {
  s_.layer_range = {first, last};
  return *this;
}

ScenarioBuilder& ScenarioBuilder::any_layer() {
  s_.layer_types.clear();
  s_.layer_range.reset();
  layer_types_set_ = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::weighted_layer_selection(bool enabled) {
  s_.weighted_layer_selection = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::backend(std::string name) {
  s_.backend = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::numeric_type(nn::NumericType type) {
  s_.numeric_type = type;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::dataset_size(std::size_t size) {
  s_.dataset_size = size;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::num_runs(std::size_t runs) {
  s_.num_runs = runs;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::batch_size(std::size_t size) {
  s_.batch_size = size;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  s_.rnd_seed = seed;
  return *this;
}

Scenario ScenarioBuilder::build() const {
  std::vector<std::string> errors = s_.validation_errors();
  if (bit_range_set_ && s_.value_type == ValueType::kRandomValue) {
    errors.push_back(
        "bit_range conflicts with value_type random_value (random-value "
        "faults ignore bit positions)");
  }
  if (value_range_set_ && s_.value_type != ValueType::kRandomValue) {
    errors.push_back(std::string("value_range conflicts with value_type ") +
                     to_string(s_.value_type) +
                     " (only random_value draws from it)");
  }
  if (s_.duration == FaultDuration::kPermanent &&
      s_.inj_policy == InjectionPolicy::kPerImage) {
    errors.push_back(
        "permanent faults conflict with the per_image policy (a fault that "
        "never heals cannot be re-drawn for every image; use per_epoch)");
  }
  if (layer_types_set_ && s_.layer_types.empty()) {
    errors.push_back(
        "layer_types was set to an empty list (no layer could receive "
        "faults; use any_layer() to lift the restriction)");
  }
  if (!errors.empty()) {
    std::string message = "invalid scenario:";
    for (const std::string& error : errors) message += "\n  - " + error;
    throw ConfigError(message);
  }
  return s_;
}

}  // namespace alfi::core
