// PtfiWrap — the top-level integration point (paper Listing 1):
//
//   wrapper = ptfiwrap(model=net)
//   fault_iter = wrapper.get_fimodel_iter()
//   for ...: CORRUPTED_MODEL = next(fault_iter)
//
// The wrapper profiles the model, pre-generates the fault matrix from
// the scenario, and hands out an iterator that arms the next fault group
// on each step and returns the (same, instrumented) model.  Scenario
// mutation at run time (get_scenario / set_scenario, §V.D) regenerates
// the fault matrix without rebuilding the wrapper — the mechanism behind
// layer sweeps, fault-count sweeps and bit-position sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fault_generator.h"
#include "core/injector.h"

namespace alfi::core {

class PtfiWrap;

/// Steps through the pre-generated fault matrix, arming one group per
/// call.  Group size is scenario.max_faults_per_image for next() and
/// batch_size * max_faults_per_image for next_for_batch().
class FaultModelIterator {
 public:
  /// Disarms previous faults, arms the next max_faults_per_image
  /// columns, returns the instrumented model.  Use for per_batch /
  /// per_epoch policies and for single-image processing.
  nn::Module& next();

  /// Arms batch_size * max_faults_per_image columns, assigning each
  /// consecutive group of max_faults_per_image faults to one sample slot
  /// (neuron faults only; weight faults ignore slots).  Use for
  /// per_image policy with batched inference.
  nn::Module& next_for_batch(std::size_t batch_size);

  /// Like next(), but remaps each neuron fault's batch slot onto the
  /// window's actual occupancy (slot % occupancy), so a per-batch fault
  /// drawn against the configured batch_size still lands on an image a
  /// short final window actually scores instead of being silently
  /// skipped.  Seed-stable: the drawn fault matrix is untouched — only
  /// the armed copy is remapped — so full windows arm exactly what
  /// next() would.
  nn::Module& next_for_window(std::size_t occupancy);

  /// Columns consumed so far.
  std::size_t position() const { return position_; }

  /// Remaining columns in the fault matrix: 0 when the iterator is
  /// stale (the wrapper regenerated/replaced its matrix since this
  /// iterator was obtained) or when the position is at/past the end —
  /// never underflows.
  std::size_t remaining() const;

  bool exhausted() const { return remaining() == 0; }

  /// True once the wrapper's fault matrix was regenerated or replaced
  /// (set_scenario / load_fault_matrix / set_fault_matrix) after this
  /// iterator was obtained.  A stale iterator reports remaining() == 0
  /// and next() throws; reset() re-binds it to the current matrix.
  bool stale() const;

  /// Rewinds to the first column of the wrapper's *current* fault
  /// matrix (faults are reused, not regenerated) and clears staleness.
  void reset();

 private:
  friend class PtfiWrap;
  explicit FaultModelIterator(PtfiWrap& wrapper);

  PtfiWrap* wrapper_;
  std::size_t position_ = 0;
  std::size_t step_ = 0;
  std::uint64_t generation_ = 0;
};

class PtfiWrap {
 public:
  /// Profiles `model` with `sample_input` and pre-generates the fault
  /// matrix from `scenario`.
  PtfiWrap(nn::Module& model, Scenario scenario, const Tensor& sample_input);

  /// Convenience: reads the scenario from a YAML file (the paper's
  /// `scenarios/default.yml`).
  PtfiWrap(nn::Module& model, const std::string& scenario_path,
           const Tensor& sample_input);

  // ---- scenario (runtime-mutable, §V.D) ----------------------------------
  const Scenario& get_scenario() const { return scenario_; }

  /// Replaces the scenario, revalidates, regenerates the fault matrix
  /// with a fresh child RNG stream, and resets iteration state.
  void set_scenario(Scenario scenario);

  // ---- fault matrix ---------------------------------------------------------
  const FaultMatrix& fault_matrix() const { return faults_; }

  /// Reuses a persisted fault set instead of the generated one (paper:
  /// "the identical set of faults can be utilized across various
  /// experiments").
  void load_fault_matrix(const std::string& path);
  void save_fault_matrix(const std::string& path) const;

  /// Replaces the fault matrix directly (e.g. to replay a subset).
  void set_fault_matrix(FaultMatrix faults);

  // ---- iteration -------------------------------------------------------------
  FaultModelIterator get_fimodel_iter() { return FaultModelIterator(*this); }

  // ---- internals exposed for the test harnesses -----------------------------
  nn::Module& model() { return model_; }
  const ModelProfile& profile() const { return *profile_; }
  Injector& injector() { return *injector_; }
  const std::vector<InjectionRecord>& records() const { return injector_->records(); }

 private:
  friend class FaultModelIterator;

  nn::Module& model_;
  Scenario scenario_;
  Rng rng_;
  std::unique_ptr<ModelProfile> profile_;
  std::unique_ptr<Injector> injector_;
  FaultMatrix faults_;
  /// Bumped whenever faults_ is regenerated or replaced; outstanding
  /// iterators compare against it to detect staleness.
  std::uint64_t matrix_generation_ = 0;
};

}  // namespace alfi::core
