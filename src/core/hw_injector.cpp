#include "core/hw_injector.h"

#include "nn/layers.h"
#include "tensor/bits.h"

namespace alfi::core {

const char* to_string(MacFaultKind kind) {
  switch (kind) {
    case MacFaultKind::kStuckAt1: return "stuck_at_1";
    case MacFaultKind::kStuckAt0: return "stuck_at_0";
    case MacFaultKind::kFlipFinal: return "flip_final";
  }
  return "?";
}

float faulty_accumulate(const std::vector<float>& products, float bias, int bit_pos,
                        MacFaultKind kind) {
  float acc = bias;
  for (const float p : products) {
    acc += p;
    switch (kind) {
      case MacFaultKind::kStuckAt1:
        acc = bits::set_bit(acc, bit_pos, true);
        break;
      case MacFaultKind::kStuckAt0:
        acc = bits::set_bit(acc, bit_pos, false);
        break;
      case MacFaultKind::kFlipFinal:
        break;  // applied after the loop
    }
  }
  if (kind == MacFaultKind::kFlipFinal) acc = bits::flip_bit(acc, bit_pos);
  return acc;
}

HwMacInjector::HwMacInjector(nn::Module& model, const ModelProfile& profile)
    : model_(model),
      profile_(profile),
      faults_by_layer_(profile.layer_count()) {
  hook_handles_.reserve(profile.layer_count());
  for (std::size_t i = 0; i < profile.layer_count(); ++i) {
    hook_handles_.push_back(profile.layer(i).module->register_forward_hook(
        [this, i](nn::Module&, const Tensor& input, Tensor& output) {
          if (!faults_by_layer_[i].empty()) apply(i, input, output);
        }));
  }
}

HwMacInjector::~HwMacInjector() {
  for (std::size_t i = 0; i < hook_handles_.size(); ++i) {
    profile_.layer(i).module->remove_forward_hook(hook_handles_[i]);
  }
}

void HwMacInjector::arm(const MacFault& fault) {
  ALFI_CHECK(fault.layer < profile_.layer_count(), "MAC fault layer out of range");
  const LayerInfo& layer = profile_.layer(fault.layer);
  ALFI_CHECK(layer.kind == nn::LayerKind::kConv2d,
             "MAC-lane faults model conv2d accelerator lanes; layer " +
                 layer.path + " is " + nn::layer_kind_name(layer.kind));
  ALFI_CHECK(fault.output_channel < layer.weight_shape[0],
             "MAC fault output channel out of range");
  bits::check_bit(fault.bit_pos);
  faults_by_layer_[fault.layer].push_back(fault);
}

void HwMacInjector::disarm() {
  for (auto& faults : faults_by_layer_) faults.clear();
}

std::size_t HwMacInjector::armed_count() const {
  std::size_t count = 0;
  for (const auto& faults : faults_by_layer_) count += faults.size();
  return count;
}

void HwMacInjector::apply(std::size_t layer_index, const Tensor& input,
                          Tensor& output) {
  const LayerInfo& info = profile_.layer(layer_index);
  auto* conv = dynamic_cast<nn::Conv2d*>(info.module);
  ALFI_CHECK(conv != nullptr, "MAC fault armed on non-Conv2d layer");
  const nn::Parameter* weight = conv->weight_param();
  const nn::Parameter* bias = conv->bias_param();

  const std::size_t n = input.dim(0), ic = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t kh = weight->value.dim(2), kw = weight->value.dim(3);
  const std::size_t oh = output.dim(2), ow = output.dim(3);
  const std::size_t oc = output.dim(1);
  const std::size_t stride = conv->stride();
  const std::size_t padding = conv->padding();

  for (const MacFault& fault : faults_by_layer_[layer_index]) {
    const std::size_t c = fault.output_channel;
    ALFI_CHECK(c < oc, "MAC fault channel out of range for output");
    ++applications_;
    for (std::size_t sample = 0; sample < n; ++sample) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          // faulty accumulation chain over the receptive field
          float acc = bias->value.flat(c);
          for (std::size_t ci = 0; ci < ic; ++ci) {
            for (std::size_t ky = 0; ky < kh; ++ky) {
              for (std::size_t kx = 0; kx < kw; ++kx) {
                const std::ptrdiff_t y =
                    static_cast<std::ptrdiff_t>(oy * stride + ky) -
                    static_cast<std::ptrdiff_t>(padding);
                const std::ptrdiff_t x =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(padding);
                if (y < 0 || x < 0 || y >= static_cast<std::ptrdiff_t>(h) ||
                    x >= static_cast<std::ptrdiff_t>(w)) {
                  continue;
                }
                const float iv =
                    input.raw()[((sample * ic + ci) * h +
                                 static_cast<std::size_t>(y)) *
                                    w +
                                static_cast<std::size_t>(x)];
                const float wv =
                    weight->value.raw()[((c * ic + ci) * kh + ky) * kw + kx];
                acc += iv * wv;
                switch (fault.kind) {
                  case MacFaultKind::kStuckAt1:
                    acc = bits::set_bit(acc, fault.bit_pos, true);
                    break;
                  case MacFaultKind::kStuckAt0:
                    acc = bits::set_bit(acc, fault.bit_pos, false);
                    break;
                  case MacFaultKind::kFlipFinal:
                    break;
                }
              }
            }
          }
          if (fault.kind == MacFaultKind::kFlipFinal) {
            acc = bits::flip_bit(acc, fault.bit_pos);
          }
          output.raw()[((sample * oc + c) * oh + oy) * ow + ox] = acc;
        }
      }
    }
  }
}

}  // namespace alfi::core
