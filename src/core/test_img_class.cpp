#include "core/test_img_class.h"

#include <cmath>
#include <filesystem>
#include <functional>
#include <optional>
#include <tuple>

#include "io/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace alfi::core {

namespace {

/// One sample of probe input so the wrapper can profile layer geometry.
Tensor probe_input(const data::ClassificationDataset& dataset) {
  const data::ClassificationSample sample = dataset.get(0);
  const Shape& s = sample.image.shape();
  return sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
}

std::string fmt_float(float v) { return strformat("%.6g", v); }

/// Serializes the fault group applied to one image as a compact string:
/// "layer:c_out:c_in:d:h:w:bit" entries joined by ';'.
std::string faults_to_field(const std::vector<Fault>& faults) {
  std::vector<std::string> parts;
  parts.reserve(faults.size());
  for (const Fault& f : faults) {
    parts.push_back(strformat("%lld:%lld:%lld:%lld:%lld:%lld:%d",
                              static_cast<long long>(f.layer),
                              static_cast<long long>(f.channel_out),
                              static_cast<long long>(f.channel_in),
                              static_cast<long long>(f.depth),
                              static_cast<long long>(f.height),
                              static_cast<long long>(f.width), f.bit_pos));
  }
  return join(parts, ";");
}

bool row_has_nonfinite(std::span<const float> row) {
  for (const float v : row) {
    if (std::isnan(v) || std::isinf(v)) return true;
  }
  return false;
}

}  // namespace

TestErrorModelsImgClass::TestErrorModelsImgClass(
    nn::Module& model, const data::ClassificationDataset& dataset, Scenario scenario,
    ImgClassCampaignConfig config)
    : model_(model),
      dataset_(dataset),
      config_(std::move(config)),
      wrapper_(model, std::move(scenario), probe_input(dataset)) {
  ALFI_CHECK(wrapper_.get_scenario().dataset_size <= dataset.size(),
             "scenario dataset_size exceeds the dataset");
  // The tightly-coupled triple shares one model instance, so weight
  // corruption must be restorable between the three passes; persistence
  // across inferences is modeled by the injection policy instead.
  if (wrapper_.get_scenario().duration != FaultDuration::kTransient) {
    throw ConfigError(
        "the coupled campaign harness requires transient duration; "
        "use inj_policy per_epoch to model persistent faults");
  }
  if (!config_.fault_file.empty()) wrapper_.load_fault_matrix(config_.fault_file);
}

ImgClassCampaignResult TestErrorModelsImgClass::run() {
  const Scenario& scenario = wrapper_.get_scenario();
  ImgClassCampaignResult result;
  const bool write_outputs = !config_.output_dir.empty();

  std::unique_ptr<io::CsvWriter> results_csv;
  std::unique_ptr<io::CsvWriter> fault_free_csv;
  if (write_outputs) {
    std::filesystem::create_directories(config_.output_dir);
    const std::string base = config_.output_dir + "/" + config_.model_name;

    result.scenario_yml = base + "_scenario.yml";
    io::Json meta = scenario.to_yaml();
    meta["meta"]["model"] = io::Json(config_.model_name);
    meta["meta"]["dataset"] = io::Json(dataset_.name());
    meta["meta"]["mitigation"] =
        io::Json(config_.mitigation ? to_string(*config_.mitigation) : "none");
    io::write_yaml_file(result.scenario_yml, meta);

    result.fault_bin = base + "_faults.bin";
    wrapper_.save_fault_matrix(result.fault_bin);

    std::vector<std::string> header{"image_id", "file_name", "gt_label",
                                    "due",      "sde",       "faults"};
    for (const char* which : {"orig", "corr", "resil"}) {
      for (std::size_t k = 1; k <= config_.top_k; ++k) {
        header.push_back(strformat("%s_top%zu_class", which, k));
        header.push_back(strformat("%s_top%zu_prob", which, k));
      }
    }
    result.results_csv = base + "_results.csv";
    results_csv = std::make_unique<io::CsvWriter>(result.results_csv, header);

    std::vector<std::string> ff_header{"image_id", "file_name", "gt_label"};
    for (std::size_t k = 1; k <= config_.top_k; ++k) {
      ff_header.push_back(strformat("top%zu_class", k));
      ff_header.push_back(strformat("top%zu_prob", k));
    }
    result.fault_free_csv = base + "_fault_free.csv";
    fault_free_csv = std::make_unique<io::CsvWriter>(result.fault_free_csv, ff_header);
  }

  // Hardened path: profile activation bounds on fault-free calibration
  // batches, install the (toggleable) protection.
  data::ClassificationLoader loader(dataset_, scenario.batch_size);
  std::unique_ptr<Protection> protection;
  if (config_.mitigation) {
    std::vector<Tensor> calibration;
    const std::size_t count =
        std::min(config_.calibration_batches, loader.num_batches());
    ALFI_CHECK(count > 0, "no calibration batches available");
    for (std::size_t b = 0; b < count; ++b) {
      calibration.push_back(loader.batch(b).images);
    }
    const RangeMap bounds = profile_activation_ranges(model_, calibration);
    protection = std::make_unique<Protection>(model_, bounds, *config_.mitigation);
    protection->set_enabled(false);
  }

  ModelMonitor monitor(model_);
  FaultModelIterator iterator = wrapper_.get_fimodel_iter();
  ClassificationKpis kpis;
  kpis.has_resil = config_.mitigation.has_value();

  // Records the verdicts and CSV rows of one window of images evaluated
  // under one armed fault group.  `images` holds `count` samples;
  // `fault_group_for(i)` names the fault columns reported for image i.
  const auto evaluate_window =
      [&](const Tensor& orig_logits, const Tensor& corr_logits,
          const Tensor* resil_logits, std::span<const std::size_t> labels,
          std::span<const data::ImageMeta> metas, bool window_monitor_due,
          std::size_t epoch,
          const std::function<std::vector<Fault>(std::size_t)>& fault_group_for) {
        const std::size_t k = orig_logits.dim(1);
        for (std::size_t i = 0; i < labels.size(); ++i) {
          const std::span<const float> orig_row{orig_logits.raw() + i * k, k};
          const std::span<const float> corr_row{corr_logits.raw() + i * k, k};

          const TopK orig_top = topk_of_logits(orig_row, config_.top_k);
          const TopK corr_top = topk_of_logits(corr_row, config_.top_k);
          TopK resil_top;
          if (resil_logits != nullptr) {
            const std::span<const float> resil_row{resil_logits->raw() + i * k, k};
            resil_top = topk_of_logits(resil_row, config_.top_k);
          }

          const bool due = row_has_nonfinite(corr_row) || window_monitor_due;
          const bool sde = !due && corr_top.classes[0] != orig_top.classes[0];

          ++kpis.total;
          kpis.orig_correct += orig_top.classes[0] == labels[i] ? 1 : 0;
          kpis.faulty_correct += corr_top.classes[0] == labels[i] ? 1 : 0;
          kpis.due += due ? 1 : 0;
          kpis.sde += sde ? 1 : 0;
          if (resil_logits != nullptr) {
            kpis.resil_correct += resil_top.classes[0] == labels[i] ? 1 : 0;
            kpis.resil_sde +=
                (!due && resil_top.classes[0] != orig_top.classes[0]) ? 1 : 0;
          }

          if (write_outputs) {
            std::vector<std::string> row{
                std::to_string(metas[i].image_id), metas[i].file_name,
                std::to_string(labels[i]), due ? "1" : "0", sde ? "1" : "0",
                faults_to_field(fault_group_for(i))};
            const auto push_topk = [&row, this](const TopK& top) {
              for (std::size_t j = 0; j < config_.top_k; ++j) {
                if (j < top.classes.size()) {
                  row.push_back(std::to_string(top.classes[j]));
                  row.push_back(fmt_float(top.probs[j]));
                } else {
                  row.push_back("");
                  row.push_back("");
                }
              }
            };
            push_topk(orig_top);
            push_topk(corr_top);
            push_topk(resil_logits != nullptr ? resil_top : TopK{});
            results_csv->write_row(row);

            if (epoch == 0) {
              std::vector<std::string> ff_row{std::to_string(metas[i].image_id),
                                              metas[i].file_name,
                                              std::to_string(labels[i])};
              for (std::size_t j = 0; j < config_.top_k; ++j) {
                if (j < orig_top.classes.size()) {
                  ff_row.push_back(std::to_string(orig_top.classes[j]));
                  ff_row.push_back(fmt_float(orig_top.probs[j]));
                } else {
                  ff_row.push_back("");
                  ff_row.push_back("");
                }
              }
              fault_free_csv->write_row(ff_row);
            }
          }
        }
      };

  // Runs the coupled triple on one input window with the currently armed
  // fault group; returns via evaluate_window.
  const auto run_triple = [&](const Tensor& images,
                              const std::function<void()>& arm) {
    wrapper_.injector().disarm();
    if (protection) protection->set_enabled(false);
    const Tensor orig = model_.forward(images);

    arm();
    monitor.reset();
    const Tensor corr = model_.forward(images);
    const bool window_due = monitor.due_detected();

    std::optional<Tensor> resil;
    if (protection) {
      protection->set_enabled(true);
      resil = model_.forward(images);
      protection->set_enabled(false);
    }
    wrapper_.injector().disarm();
    return std::tuple<Tensor, Tensor, std::optional<Tensor>, bool>(
        std::move(orig), std::move(corr), std::move(resil), window_due);
  };

  const std::size_t group = scenario.max_faults_per_image;

  for (std::size_t epoch = 0; epoch < scenario.num_runs; ++epoch) {
    if (scenario.inj_policy == InjectionPolicy::kPerImage) {
      // One image per window: each image sees exactly its own fault
      // group (required for per-image weight faults) and DUE verdicts
      // attribute precisely.
      for (std::size_t img = 0; img < scenario.dataset_size; ++img) {
        const data::ClassificationSample sample = dataset_.get(img);
        const Shape& s = sample.image.shape();
        const Tensor input = sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
        std::size_t group_start = 0;
        const auto [orig, corr, resil, window_due] = run_triple(input, [&] {
          iterator.next();
          group_start = iterator.position() - group;
        });
        const std::size_t labels[1] = {sample.label};
        const data::ImageMeta metas[1] = {sample.meta};
        evaluate_window(orig, corr, resil ? &*resil : nullptr, labels, metas,
                        window_due, epoch, [&](std::size_t) {
                          return wrapper_.fault_matrix().slice(group_start, group);
                        });
      }
    } else {
      // Batched windows: one fault group per batch (per_batch) or per
      // epoch (per_epoch).  DUE from the monitor is window-scoped, which
      // matches the window-scoped fault group.
      std::size_t epoch_group_start = 0;
      if (scenario.inj_policy == InjectionPolicy::kPerEpoch) {
        iterator.next();  // consume the epoch's group
        epoch_group_start = iterator.position() - group;
        wrapper_.injector().disarm();
      }

      std::size_t images_done = 0;
      for (std::size_t b = 0; images_done < scenario.dataset_size; ++b) {
        const data::ClassificationBatch batch = loader.batch(b);
        const std::size_t use =
            std::min(batch.size(), scenario.dataset_size - images_done);

        std::size_t group_start = epoch_group_start;
        const auto [orig, corr, resil, window_due] =
            run_triple(batch.images, [&] {
              if (scenario.inj_policy == InjectionPolicy::kPerBatch) {
                iterator.next();
                group_start = iterator.position() - group;
              } else {
                wrapper_.injector().arm(
                    wrapper_.fault_matrix().slice(epoch_group_start, group));
              }
            });
        evaluate_window(orig, corr, resil ? &*resil : nullptr,
                        std::span<const std::size_t>(batch.labels.data(), use),
                        std::span<const data::ImageMeta>(batch.metas.data(), use),
                        window_due, epoch, [&](std::size_t) {
                          return wrapper_.fault_matrix().slice(group_start, group);
                        });
        images_done += use;
      }
    }
    wrapper_.injector().disarm();
  }

  if (write_outputs) {
    result.trace_bin = config_.output_dir + "/" + config_.model_name + "_trace.bin";
    save_injection_records(wrapper_.injector().records(), result.trace_bin);
  }

  result.kpis = kpis;
  return result;
}

}  // namespace alfi::core
