#include "core/test_img_class.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <limits>

#include "core/campaign.h"
#include "core/fleet.h"
#include "nn/workspace.h"
#include "tensor/backend.h"
#include "io/csv.h"
#include "io/metrics_json.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace alfi::core {

namespace {

/// One sample of probe input so the wrapper can profile layer geometry.
Tensor probe_input(const data::ClassificationDataset& dataset) {
  const data::ClassificationSample sample = dataset.get(0);
  const Shape& s = sample.image.shape();
  return sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
}

std::string fmt_float(float v) { return strformat("%.6g", v); }

/// Serializes the fault group applied to one image as a compact string:
/// "layer:c_out:c_in:d:h:w:bit" entries joined by ';'.
std::string faults_to_field(const std::vector<Fault>& faults) {
  std::vector<std::string> parts;
  parts.reserve(faults.size());
  for (const Fault& f : faults) {
    parts.push_back(strformat("%lld:%lld:%lld:%lld:%lld:%lld:%d",
                              static_cast<long long>(f.layer),
                              static_cast<long long>(f.channel_out),
                              static_cast<long long>(f.channel_in),
                              static_cast<long long>(f.depth),
                              static_cast<long long>(f.height),
                              static_cast<long long>(f.width), f.bit_pos));
  }
  return join(parts, ";");
}

bool row_has_nonfinite(std::span<const float> row) {
  for (const float v : row) {
    if (std::isnan(v) || std::isinf(v)) return true;
  }
  return false;
}

/// Verdicts and CSV rows produced by evaluating one window of images,
/// merged into the campaign totals in unit order.
struct EvalSink {
  ClassificationKpis kpis;
  std::vector<std::vector<std::string>> result_rows;
  std::vector<std::vector<std::string>> fault_free_rows;
};

/// Per-worker execution resources: the model (original or deep-cloned
/// replica) plus the injection/observation machinery bound to it.
/// When the workspace pointers are set, the triple runs through the
/// arena-backed zero-allocation path — one workspace per pass so the
/// three output tensors coexist; otherwise each pass uses the legacy
/// allocating forward() and parks its result in the holder members.
struct ExecContext {
  nn::Module* model = nullptr;
  Injector* injector = nullptr;
  ModelMonitor* monitor = nullptr;
  Protection* protection = nullptr;  // null when no mitigation configured
  nn::InferenceWorkspace* ws_orig = nullptr;
  nn::InferenceWorkspace* ws_corr = nullptr;
  nn::InferenceWorkspace* ws_resil = nullptr;
  Tensor orig_hold, corr_hold, resil_hold;  // allocating-path storage
  /// Differential inference: corr/resil replay the orig pass's cached
  /// prefix up to the earliest armed layer (workspace path only).
  bool diff = false;
  util::Counter* diff_skipped = nullptr;  // campaign.diff.layers_skipped
  util::Counter* diff_hits = nullptr;     // passes that replayed >= 1 leaf
  util::Counter* diff_misses = nullptr;   // passes that fully recomputed
  /// Packed unit batch: > 0 makes run_triple snapshot per-slot monitor
  /// verdicts into *slot_due_out right after the corrupted pass — the
  /// same point a serial unit reads its window_due — before the
  /// hardened pass can add detections of its own.
  std::size_t slot_count = 0;
  std::vector<std::uint8_t>* slot_due_out = nullptr;
};

/// Outputs of one coupled triple; the pointers reference either the
/// workspaces' root slots or the context's holder tensors, valid until
/// the next run_triple on the same context.
struct TripleOutputs {
  const Tensor* orig = nullptr;
  const Tensor* corr = nullptr;
  const Tensor* resil = nullptr;  // null without mitigation
  bool window_due = false;
};

/// Records the verdicts and CSV rows of one window of images evaluated
/// under one armed fault group.  `fault_group_for(i)` names the fault
/// columns reported for image i of the window.  `first_row` offsets the
/// logit rows read for image i (row first_row + i): a packed unit batch
/// evaluates each slot as its own one-image window against the slot's
/// row of the shared output tensors.
void evaluate_window(
    EvalSink& out, std::size_t top_k, bool make_rows, const Tensor& orig_logits,
    const Tensor& corr_logits, const Tensor* resil_logits,
    std::span<const std::size_t> labels, std::span<const data::ImageMeta> metas,
    bool window_monitor_due, std::size_t epoch,
    const std::function<std::vector<Fault>(std::size_t)>& fault_group_for,
    const std::function<std::size_t(std::size_t)>& applied_for,
    std::size_t first_row = 0) {
  const std::size_t k = orig_logits.dim(1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t row_index = first_row + i;
    const std::span<const float> orig_row{orig_logits.raw() + row_index * k, k};
    const std::span<const float> corr_row{corr_logits.raw() + row_index * k, k};

    const TopK orig_top = topk_of_logits(orig_row, top_k);
    const TopK corr_top = topk_of_logits(corr_row, top_k);
    TopK resil_top;
    if (resil_logits != nullptr) {
      const std::span<const float> resil_row{resil_logits->raw() + row_index * k,
                                             k};
      resil_top = topk_of_logits(resil_row, top_k);
    }

    const bool due = row_has_nonfinite(corr_row) || window_monitor_due;
    const bool sde = !due && corr_top.classes[0] != orig_top.classes[0];

    ++out.kpis.total;
    out.kpis.orig_correct += orig_top.classes[0] == labels[i] ? 1 : 0;
    out.kpis.faulty_correct += corr_top.classes[0] == labels[i] ? 1 : 0;
    out.kpis.due += due ? 1 : 0;
    out.kpis.sde += sde ? 1 : 0;
    if (resil_logits != nullptr) {
      out.kpis.resil_correct += resil_top.classes[0] == labels[i] ? 1 : 0;
      out.kpis.resil_sde +=
          (!due && resil_top.classes[0] != orig_top.classes[0]) ? 1 : 0;
    }

    if (make_rows) {
      std::vector<std::string> row{
          std::to_string(metas[i].image_id), metas[i].file_name,
          std::to_string(labels[i]), due ? "1" : "0", sde ? "1" : "0",
          faults_to_field(fault_group_for(i)), std::to_string(applied_for(i))};
      const auto push_topk = [&row, top_k](const TopK& top) {
        for (std::size_t j = 0; j < top_k; ++j) {
          if (j < top.classes.size()) {
            row.push_back(std::to_string(top.classes[j]));
            row.push_back(fmt_float(top.probs[j]));
          } else {
            row.push_back("");
            row.push_back("");
          }
        }
      };
      push_topk(orig_top);
      push_topk(corr_top);
      push_topk(resil_logits != nullptr ? resil_top : TopK{});
      out.result_rows.push_back(std::move(row));

      if (epoch == 0) {
        std::vector<std::string> ff_row{std::to_string(metas[i].image_id),
                                        metas[i].file_name,
                                        std::to_string(labels[i])};
        for (std::size_t j = 0; j < top_k; ++j) {
          if (j < orig_top.classes.size()) {
            ff_row.push_back(std::to_string(orig_top.classes[j]));
            ff_row.push_back(fmt_float(orig_top.probs[j]));
          } else {
            ff_row.push_back("");
            ff_row.push_back("");
          }
        }
        out.fault_free_rows.push_back(std::move(ff_row));
      }
    }
  }
}

/// Runs the coupled triple with the fault group `arm` installs, against
/// the given execution context.  The fault-free pass runs on
/// `orig_images`; the corrupted and hardened passes run on
/// `faulty_images`.  A same-image unit pack passes a batch-1 tensor as
/// `orig_images` and its N-fold replication as `faulty_images`, so one
/// shared fault-free pass serves every slot (the broadcast prefix
/// replay, DESIGN.md §12); everywhere else the two are the same tensor.
TripleOutputs run_triple(ExecContext& ctx, const Tensor& orig_images,
                         const Tensor& faulty_images,
                         const std::function<void()>& arm) {
  const bool use_ws = ctx.ws_orig != nullptr;
  TripleOutputs out;
  ctx.injector->disarm();
  if (ctx.protection) ctx.protection->set_enabled(false);
  // The fault-free pass observes whole-tensor — a same-image pack runs
  // it batch-1; per-slot monitoring only matters for the armed passes.
  ctx.monitor->set_slot_count(0);
  if (use_ws) {
    out.orig = &ctx.ws_orig->run(*ctx.model, orig_images);
  } else {
    ctx.orig_hold = ctx.model->forward(orig_images);
    out.orig = &ctx.orig_hold;
  }

  arm();
  ctx.monitor->set_slot_count(ctx.slot_count);
  ctx.monitor->reset();
  // The armed set is fixed for both remaining passes, so one boundary
  // serves corr and resil alike; 0 (diff off or nothing replayable)
  // makes forward_from a plain full recompute.
  std::size_t boundary = 0;
  if (use_ws && ctx.diff) {
    boundary = diff_prefix_boundary(*ctx.injector, *ctx.ws_orig);
  }
  const auto note_diff = [&ctx](const nn::InferenceWorkspace& ws) {
    if (!ctx.diff) return;
    const std::size_t reused = ws.prefix_reused_last_run();
    if (ctx.diff_skipped != nullptr) ctx.diff_skipped->add(reused);
    util::Counter* outcome = reused > 0 ? ctx.diff_hits : ctx.diff_misses;
    if (outcome != nullptr) outcome->add();
  };
  if (use_ws) {
    out.corr = &ctx.model->forward_from(boundary, faulty_images, *ctx.ws_corr);
    note_diff(*ctx.ws_corr);
  } else {
    ctx.corr_hold = ctx.model->forward(faulty_images);
    out.corr = &ctx.corr_hold;
  }
  out.window_due = ctx.monitor->due_detected();
  if (ctx.slot_due_out != nullptr) {
    ctx.slot_due_out->assign(ctx.slot_count, 0);
    for (std::size_t s = 0; s < ctx.slot_count; ++s) {
      (*ctx.slot_due_out)[s] = ctx.monitor->slot_due(s) ? 1 : 0;
    }
  }

  if (ctx.protection) {
    ctx.protection->set_enabled(true);
    if (use_ws) {
      out.resil = &ctx.model->forward_from(boundary, faulty_images, *ctx.ws_resil);
      note_diff(*ctx.ws_resil);
    } else {
      ctx.resil_hold = ctx.model->forward(faulty_images);
      out.resil = &ctx.resil_hold;
    }
    ctx.protection->set_enabled(false);
  }
  ctx.injector->disarm();
  return out;
}

void write_rows(io::ByteWriter& w,
                const std::vector<std::vector<std::string>>& rows) {
  w.write_u64(rows.size());
  for (const auto& row : rows) {
    w.write_u64(row.size());
    for (const std::string& field : row) w.write_string(field);
  }
}

std::vector<std::vector<std::string>> read_rows(io::ByteReader& r) {
  std::vector<std::vector<std::string>> rows(r.read_u64());
  for (auto& row : rows) {
    row.resize(r.read_u64());
    for (std::string& field : row) field = r.read_string();
  }
  return rows;
}

/// Unit payload: KPI counter deltas, CSV rows and injection records of
/// one image evaluated under one fault group.  Deterministic in the
/// unit index alone, so journal-replayed and fresh units match.
std::string serialize_unit(const EvalSink& out,
                           const std::vector<InjectionRecord>& records,
                           std::size_t base_records) {
  io::ByteWriter w;
  w.write_u64(out.kpis.total);
  w.write_u64(out.kpis.orig_correct);
  w.write_u64(out.kpis.faulty_correct);
  w.write_u64(out.kpis.resil_correct);
  w.write_u64(out.kpis.sde);
  w.write_u64(out.kpis.due);
  w.write_u64(out.kpis.resil_sde);
  write_rows(w, out.result_rows);
  write_rows(w, out.fault_free_rows);
  w.write_u64(records.size() - base_records);
  for (std::size_t i = base_records; i < records.size(); ++i) {
    write_record_bytes(w, records[i]);
  }
  return w.take();
}

}  // namespace

/// Per-worker unit engine for the classification campaign.  A shared
/// runner drives the wrapped original model (single-shard serial path);
/// otherwise it owns a deep-cloned replica with its own injection stack
/// so workers share only read-only state (dataset, fault matrix,
/// calibration bounds).
class ImgClassUnitRunner final : public CampaignUnitRunner {
 public:
  ImgClassUnitRunner(TestErrorModelsImgClass& harness, bool shared_model)
      : h_(harness) {
    const Scenario& scenario = h_.wrapper_.get_scenario();
    if (shared_model) {
      ctx_.model = &h_.model_;
      ctx_.injector = &h_.wrapper_.injector();
    } else {
      replica_ = h_.model_.clone();
      profile_ = std::make_unique<ModelProfile>(*replica_, probe_input(h_.dataset_));
      if (h_.store_) {
        // Bit-exact copy of the primary stored representation, rebound
        // onto the replica's parameters (never rebuilt from the
        // dequantized values — scales could round differently).
        replica_store_ =
            std::make_unique<nn::StoredWeightStore>(*replica_, *h_.store_);
      }
      injector_ =
          std::make_unique<Injector>(*replica_, *profile_, scenario.duration);
      injector_->set_numeric_type(scenario.numeric_type);
      injector_->set_stored_weights(replica_store_.get());
      ctx_.model = replica_.get();
      ctx_.injector = injector_.get();
    }
    ctx_.injector->set_metrics(&h_.metrics_);
    monitor_ = std::make_unique<ModelMonitor>(*ctx_.model);
    monitor_->set_metrics(&h_.metrics_);
    ctx_.monitor = monitor_.get();
    if (h_.config_.mitigation) {
      protection_ = std::make_unique<Protection>(*ctx_.model, h_.bounds_,
                                                 *h_.config_.mitigation);
      protection_->set_enabled(false);
    }
    ctx_.protection = protection_.get();
    if (h_.config_.workspace) {
      ctx_.ws_orig = &ws_orig_;
      ctx_.ws_corr = &ws_corr_;
      ctx_.ws_resil = &ws_resil_;
      arena_gauge_ = &h_.metrics_.gauge("campaign.arena_high_water_bytes");
      if (h_.config_.diff) {
        // corr/resil replay the orig pass; observers follow the hook
        // order on each leaf (injector has nothing to replay on unarmed
        // layers, monitor observes, protection validates its clamp).
        ctx_.diff = true;
        for (nn::InferenceWorkspace* ws : {&ws_corr_, &ws_resil_}) {
          ws->set_prefix_baseline(&ws_orig_);
          // Same-image packs run the orig pass at batch 1 under a K-row
          // corr/resil pass; every packed row is the same image, so the
          // broadcast-replay row-equality contract holds (DESIGN.md §12).
          ws->set_prefix_broadcast(true);
          ws->add_prefix_observer(monitor_.get());
          if (ctx_.protection != nullptr) ws->add_prefix_observer(ctx_.protection);
        }
        ctx_.diff_skipped = &h_.metrics_.counter("campaign.diff.layers_skipped");
        ctx_.diff_hits = &h_.metrics_.counter("campaign.diff.prefix_hits");
        ctx_.diff_misses = &h_.metrics_.counter("campaign.diff.prefix_misses");
      }
    }
  }

  /// Global step t = epoch * dataset_size + img runs image `img` under
  /// fault columns [t*group, (t+1)*group).  The global index keeps
  /// slice positions and trace labels independent of which shard — or
  /// which process, for a resumed campaign — executes the step.
  std::string run_unit(std::size_t t) override {
    const Scenario& scenario = h_.wrapper_.get_scenario();
    const std::size_t group = scenario.max_faults_per_image;
    const std::size_t epoch = t / scenario.dataset_size;
    const std::size_t img = t % scenario.dataset_size;
    const data::ClassificationSample sample = h_.dataset_.get(img);
    const Shape& s = sample.image.shape();
    const Tensor input = sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
    const std::vector<Fault> faults =
        h_.wrapper_.fault_matrix().slice(t * group, group);

    const std::size_t base_records = ctx_.injector->records().size();
    const TripleOutputs trip = run_triple(ctx_, input, input, [&] {
      ctx_.injector->set_inference_index(t);
      ctx_.injector->arm(faults);
    });
    if (arena_gauge_ != nullptr) {
      // Same planned footprint every unit, so the gauge is deterministic
      // for any job count (the three passes share one plan size).
      arena_gauge_->set(static_cast<double>(ws_corr_.high_water_bytes()));
    }

    EvalSink out;
    const std::size_t labels[1] = {sample.label};
    const data::ImageMeta metas[1] = {sample.meta};
    const std::size_t applied = ctx_.injector->records().size() - base_records;
    evaluate_window(out, h_.config_.top_k, /*make_rows=*/true, *trip.orig,
                    *trip.corr, trip.resil, labels, metas, trip.window_due,
                    epoch, [&](std::size_t) { return faults; },
                    [&](std::size_t) { return applied; });
    return serialize_unit(out, ctx_.injector->records(), base_records);
  }

  /// Packed execution (DESIGN.md §12): the given units run as one
  /// triple over a [count, C, H, W] tensor, each unit's fault group
  /// armed on its own batch slot.  The executor strides packs by
  /// dataset_size, so a pack normally holds the SAME image under
  /// different epochs' fault groups — the fault-free pass then runs
  /// batch-1 and is shared by every slot (via the broadcast prefix
  /// replay when diff is on).  Per-slot outputs are evaluated and
  /// serialized exactly as count separate run_unit calls would have —
  /// same rows, same KPIs, same records, same counters.
  std::vector<std::string> run_unit_pack(
      const std::vector<std::size_t>& units) override {
    if (units.size() == 1) return {run_unit(units[0])};
    const std::size_t count = units.size();
    const Scenario& scenario = h_.wrapper_.get_scenario();
    const std::size_t group = scenario.max_faults_per_image;

    bool same_image = true;
    for (std::size_t i = 1; i < count; ++i) {
      if (units[i] % scenario.dataset_size !=
          units[0] % scenario.dataset_size) {
        same_image = false;
        break;
      }
    }

    // Pack the units' input samples along dim 0.
    const data::ClassificationSample probe =
        h_.dataset_.get(units[0] % scenario.dataset_size);
    const Shape& s = probe.image.shape();
    Tensor packed(Shape{count, s[0], s[1], s[2]});
    const std::size_t per_image = probe.image.numel();
    std::vector<std::size_t> labels(count);
    std::vector<data::ImageMeta> metas(count);
    for (std::size_t i = 0; i < count; ++i) {
      const data::ClassificationSample sample =
          h_.dataset_.get(units[i] % scenario.dataset_size);
      std::copy(sample.image.raw(), sample.image.raw() + per_image,
                packed.raw() + i * per_image);
      labels[i] = sample.label;
      metas[i] = sample.meta;
    }
    // A same-image pack computes the fault-free pass once, batch-1.
    const Tensor orig_input =
        same_image ? probe.image.reshaped(Shape{1, s[0], s[1], s[2]})
                   : Tensor();

    // Arm every slot's group in one set.  Per-unit serial semantics on
    // a one-image inference: batch <= 0 applies (to slot 0), batch > 0
    // is out of range and skipped.  The packed equivalents: batch <= 0
    // arms on the unit's slot; batch > 0 is pushed past the packed
    // batch (slot count + batch) so the injector's skip accounting
    // fires exactly as it would serially.
    const auto arm = [&] {
      ctx_.injector->set_inference_index(units[0]);
      std::vector<Fault> armed;
      armed.reserve(count * group);
      for (std::size_t i = 0; i < count; ++i) {
        for (Fault f : h_.wrapper_.fault_matrix().slice(units[i] * group, group)) {
          if (f.target == FaultTarget::kNeurons) {
            f.batch = f.batch > 0 ? f.batch + static_cast<std::int64_t>(count)
                                  : static_cast<std::int64_t>(i);
          }
          armed.push_back(f);
        }
      }
      ctx_.injector->arm(std::move(armed));
    };

    std::vector<std::uint8_t> slot_due;
    ctx_.slot_count = count;
    ctx_.slot_due_out = &slot_due;
    const std::size_t base_records = ctx_.injector->records().size();
    const TripleOutputs trip =
        run_triple(ctx_, same_image ? orig_input : packed, packed, arm);
    ctx_.slot_due_out = nullptr;
    ctx_.slot_count = 0;
    ctx_.monitor->set_slot_count(0);
    if (arena_gauge_ != nullptr) {
      arena_gauge_->set(static_cast<double>(ws_corr_.high_water_bytes()));
    }

    // A shared fault-free pass produced one logit row; evaluate_window
    // reads the slot's row, so replicate it count ways (identical to
    // what count serial fault-free passes would each have produced).
    Tensor orig_rep;
    const Tensor* orig_logits = trip.orig;
    if (same_image) {
      const std::size_t k = trip.orig->dim(1);
      orig_rep = Tensor(Shape{count, k});
      for (std::size_t i = 0; i < count; ++i) {
        std::copy(trip.orig->raw(), trip.orig->raw() + k,
                  orig_rep.raw() + i * k);
      }
      orig_logits = &orig_rep;
    }

    // Rewrite the packed pass's records into per-unit serial form: the
    // recorded batch slot identifies the owning unit; a serial unit
    // records batch 0 and its own inference index.  Bucketing by slot
    // preserves the within-pass firing order, which equals each serial
    // unit's record order (layers fire in the same order either way).
    std::vector<InjectionRecord>& recs = ctx_.injector->records_mutable();
    std::vector<std::vector<InjectionRecord>> per_unit_records(count);
    for (std::size_t r = base_records; r < recs.size(); ++r) {
      InjectionRecord record = recs[r];
      const std::size_t slot = static_cast<std::size_t>(record.fault.batch);
      record.fault.batch = 0;
      record.inference_index = units[slot];
      per_unit_records[slot].push_back(record);
      recs[r] = record;
    }

    std::vector<std::string> payloads;
    payloads.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t t = units[i];
      const std::vector<Fault> faults =
          h_.wrapper_.fault_matrix().slice(t * group, group);
      EvalSink out;
      const std::span<const std::size_t> label_span{labels.data() + i, 1};
      const std::span<const data::ImageMeta> meta_span{metas.data() + i, 1};
      evaluate_window(out, h_.config_.top_k, /*make_rows=*/true, *orig_logits,
                      *trip.corr, trip.resil, label_span, meta_span,
                      slot_due[i] != 0, t / scenario.dataset_size,
                      [&](std::size_t) { return faults; },
                      [&](std::size_t) { return per_unit_records[i].size(); },
                      /*first_row=*/i);
      payloads.push_back(serialize_unit(out, per_unit_records[i], 0));
    }
    return payloads;
  }

 private:
  TestErrorModelsImgClass& h_;
  std::shared_ptr<nn::Module> replica_;  // null when sharing the original
  std::unique_ptr<ModelProfile> profile_;
  // Declared before injector_: the injector's destructor restores
  // corrupted weights through the store.
  std::unique_ptr<nn::StoredWeightStore> replica_store_;
  std::unique_ptr<Injector> injector_;
  std::unique_ptr<ModelMonitor> monitor_;
  std::unique_ptr<Protection> protection_;
  nn::InferenceWorkspace ws_orig_, ws_corr_, ws_resil_;
  util::Gauge* arena_gauge_ = nullptr;
  ExecContext ctx_;
};

TestErrorModelsImgClass::TestErrorModelsImgClass(
    nn::Module& model, const data::ClassificationDataset& dataset, Scenario scenario,
    ImgClassCampaignConfig config)
    : model_(model),
      dataset_(dataset),
      config_(std::move(config)),
      wrapper_(model, std::move(scenario), probe_input(dataset)) {
  ALFI_CHECK(wrapper_.get_scenario().dataset_size <= dataset.size(),
             "scenario dataset_size exceeds the dataset");
  // The tightly-coupled triple shares one model instance, so weight
  // corruption must be restorable between the three passes; persistence
  // across inferences is modeled by the injection policy instead.
  if (wrapper_.get_scenario().duration != FaultDuration::kTransient) {
    throw ConfigError(
        "the coupled campaign harness requires transient duration; "
        "use inj_policy per_epoch to model persistent faults");
  }
  if (!config_.fault_file.empty()) wrapper_.load_fault_matrix(config_.fault_file);
}

std::size_t TestErrorModelsImgClass::unit_count() const {
  const Scenario& scenario = wrapper_.get_scenario();
  return scenario.dataset_size * scenario.num_runs;
}

std::uint64_t TestErrorModelsImgClass::fingerprint() const {
  // Beyond scenario + fault matrix, the unit payloads also depend on
  // the mitigation choice and top_k — fold them in so a resume with a
  // different configuration is refused.
  io::ByteWriter extra;
  extra.write_string(config_.mitigation ? to_string(*config_.mitigation)
                                        : "none");
  extra.write_u64(config_.top_k);
  return fnv1a64(extra.bytes(),
                 campaign_fingerprint(wrapper_.get_scenario(),
                                      wrapper_.fault_matrix()));
}

void TestErrorModelsImgClass::prepare() {
  const Scenario& scenario = wrapper_.get_scenario();
  const bool write_outputs = !config_.output_dir.empty();

  // Inference configuration (DESIGN.md §13): resolve the backend — an
  // unavailable explicit choice fails here, loudly — and install the
  // weight representation before calibration so the hardened bounds are
  // profiled on the model the campaign actually runs.
  tensor::Backend& backend = tensor::resolve_backend(scenario.backend);
  tensor::set_active_backend(backend);
  resolved_backend_ = backend.name();
  if (nn::is_stored_type(scenario.numeric_type)) {
    if (!store_) store_.emplace(model_, scenario.numeric_type);
  } else if (scenario.numeric_type != nn::NumericType::kFloat32) {
    nn::quantize_parameters(model_, scenario.numeric_type);
  }
  wrapper_.injector().set_numeric_type(scenario.numeric_type);
  wrapper_.injector().set_stored_weights(store_ ? &*store_ : nullptr);

  kpis_ = {};
  kpis_.has_resil = config_.mitigation.has_value();
  result_rows_.clear();
  fault_free_rows_.clear();
  trace_.clear();
  result_ = {};

  header_ = {"image_id", "file_name", "gt_label", "due", "sde", "faults",
             "applied"};
  for (const char* which : {"orig", "corr", "resil"}) {
    for (std::size_t k = 1; k <= config_.top_k; ++k) {
      header_.push_back(strformat("%s_top%zu_class", which, k));
      header_.push_back(strformat("%s_top%zu_prob", which, k));
    }
  }
  ff_header_ = {"image_id", "file_name", "gt_label"};
  for (std::size_t k = 1; k <= config_.top_k; ++k) {
    ff_header_.push_back(strformat("top%zu_class", k));
    ff_header_.push_back(strformat("top%zu_prob", k));
  }

  if (scenario.inj_policy == InjectionPolicy::kPerImage) {
    ALFI_CHECK(wrapper_.fault_matrix().size() >=
                   unit_count() * scenario.max_faults_per_image,
               "fault matrix smaller than the campaign needs: increase "
               "dataset_size/num_runs or load a larger fault file");
  }

  if (write_outputs) {
    std::filesystem::create_directories(config_.output_dir);
    const std::string base = config_.output_dir + "/" + config_.model_name;

    result_.scenario_yml = base + "_scenario.yml";
    io::Json meta = scenario.to_yaml();
    meta["meta"]["model"] = io::Json(config_.model_name);
    meta["meta"]["dataset"] = io::Json(dataset_.name());
    meta["meta"]["mitigation"] =
        io::Json(config_.mitigation ? to_string(*config_.mitigation) : "none");
    io::write_yaml_file(result_.scenario_yml, meta);

    result_.fault_bin = base + "_faults.bin";
    wrapper_.save_fault_matrix(result_.fault_bin);
    result_.results_csv = base + "_results.csv";
    result_.fault_free_csv = base + "_fault_free.csv";
  }

  // Hardened path: profile activation bounds on fault-free calibration
  // batches once, up front — workers install their own Protection over
  // the same bounds, so hardened verdicts match the serial run exactly.
  bounds_ = {};
  if (config_.mitigation) {
    data::ClassificationLoader loader(dataset_, scenario.batch_size);
    std::vector<Tensor> calibration;
    const std::size_t count =
        std::min(config_.calibration_batches, loader.num_batches());
    ALFI_CHECK(count > 0, "no calibration batches available");
    for (std::size_t b = 0; b < count; ++b) {
      calibration.push_back(loader.batch(b).images);
    }
    bounds_ = profile_activation_ranges(model_, calibration);
  }
}

std::unique_ptr<CampaignUnitRunner> TestErrorModelsImgClass::make_unit_runner(
    bool shared_model) {
  return std::make_unique<ImgClassUnitRunner>(*this, shared_model);
}

std::size_t TestErrorModelsImgClass::max_unit_pack() const {
  for (const Fault& fault : wrapper_.fault_matrix().faults()) {
    if (fault.target == FaultTarget::kWeights) return 1;
  }
  return std::numeric_limits<std::size_t>::max();
}

std::size_t TestErrorModelsImgClass::unit_pack_stride() const {
  const Scenario& scenario = wrapper_.get_scenario();
  return scenario.num_runs > 1 ? scenario.dataset_size : 1;
}

std::vector<SteeringCellKey> TestErrorModelsImgClass::steering_cells() const {
  const Scenario& scenario = wrapper_.get_scenario();
  if (scenario.inj_policy != InjectionPolicy::kPerImage) return {};
  const std::size_t units = unit_count();
  const std::size_t group = scenario.max_faults_per_image;
  const auto& matrix = wrapper_.fault_matrix();
  if (matrix.size() < units * group) return {};

  const ModelProfile& profile = wrapper_.profile();
  std::vector<SteeringCellKey> cells(units);
  for (std::size_t t = 0; t < units; ++t) {
    // A unit is attributed to its group's FIRST fault — exact for
    // max_faults_per_image == 1 (the steering-relevant configuration),
    // a first-fault approximation for larger groups.
    const Fault& fault = matrix.faults()[t * group];
    SteeringCellKey& key = cells[t];
    key.layer = fault.layer;
    key.value_type = fault.value_type;
    key.bit_pos = fault.value_type == ValueType::kBitFlip ||
                          fault.value_type == ValueType::kStuckAt0 ||
                          fault.value_type == ValueType::kStuckAt1
                      ? fault.bit_pos
                      : -1;
    if (fault.layer >= 0 &&
        static_cast<std::size_t>(fault.layer) < profile.layer_count()) {
      key.role = nn::layer_kind_name(profile.layer(fault.layer).kind);
    }
  }
  return cells;
}

SteeringUnitOutcome TestErrorModelsImgClass::classify_unit(
    std::size_t, const std::string& payload) const {
  io::ByteReader r(payload);
  r.read_u64();  // total
  r.read_u64();  // orig_correct
  r.read_u64();  // faulty_correct
  r.read_u64();  // resil_correct
  const std::uint64_t sde = r.read_u64();
  const std::uint64_t due = r.read_u64();
  r.read_u64();  // resil_sde
  read_rows(r);  // result rows
  read_rows(r);  // fault-free rows
  const std::uint64_t record_count = r.read_u64();
  SteeringUnitOutcome outcome;
  outcome.sdc = sde > 0;
  outcome.due = due > 0;
  // No injection record means the armed fault never landed (skipped
  // batch-slot backstop); the unit carries no vulnerability evidence.
  outcome.skipped = record_count == 0;
  return outcome;
}

void TestErrorModelsImgClass::absorb_unit(std::size_t, const std::string& payload) {
  io::ByteReader r(payload);
  kpis_.total += r.read_u64();
  kpis_.orig_correct += r.read_u64();
  kpis_.faulty_correct += r.read_u64();
  kpis_.resil_correct += r.read_u64();
  kpis_.sde += r.read_u64();
  kpis_.due += r.read_u64();
  kpis_.resil_sde += r.read_u64();
  for (auto& row : read_rows(r)) result_rows_.push_back(std::move(row));
  for (auto& row : read_rows(r)) fault_free_rows_.push_back(std::move(row));
  const std::uint64_t num_records = r.read_u64();
  for (std::uint64_t i = 0; i < num_records; ++i) {
    trace_.push_back(read_record_bytes(r));
  }
}

void TestErrorModelsImgClass::finalize() {
  if (!config_.output_dir.empty()) {
    io::CsvWriter results_csv(result_.results_csv, header_, io::WriteMode::kAtomic);
    io::CsvWriter fault_free_csv(result_.fault_free_csv, ff_header_,
                                 io::WriteMode::kAtomic);
    for (const auto& row : result_rows_) results_csv.write_row(row);
    for (const auto& row : fault_free_rows_) fault_free_csv.write_row(row);
    results_csv.close();
    fault_free_csv.close();

    result_.trace_bin = config_.output_dir + "/" + config_.model_name + "_trace.bin";
    save_injection_records(trace_, result_.trace_bin);
  }
  result_.kpis = kpis_;
}

ImgClassCampaignResult TestErrorModelsImgClass::run() {
  const Scenario& scenario = wrapper_.get_scenario();
  const Stopwatch run_watch;

  if (config_.fleet.enabled()) {
    if (scenario.inj_policy != InjectionPolicy::kPerImage) {
      throw ConfigError(
          "fleet execution requires inj_policy per_image for classification "
          "(batched policies are not unit-addressable)");
    }
    if (config_.fleet.worker_mode()) {
      // A worker only streams unit frames; the coordinator writes every
      // campaign output exactly once.
      if (!config_.output_dir.empty()) {
        ALFI_LOG(kInfo) << "fleet worker: ignoring output dir (the "
                           "coordinator writes all outputs)";
        config_.output_dir.clear();
      }
      const auto [host, port] = parse_host_port(config_.fleet.connect);
      FleetWorker worker(*this, host, port, /*prepared=*/false);
      const FleetWorkerStats stats = worker.run();
      ALFI_LOG(kInfo) << "fleet worker done: " << stats.units_computed
                      << " units over " << stats.leases_served << " leases"
                      << (stats.drained ? " (drained)" : "");
    } else {
      FleetCoordinator coordinator(*this, &metrics_);
      coordinator.execute();
    }
    finish_metrics(run_watch.elapsed_seconds());
    return result_;
  }

  if (scenario.inj_policy == InjectionPolicy::kPerImage) {
    CampaignExecutor executor(*this, &metrics_);
    executor.execute();
    finish_metrics(run_watch.elapsed_seconds());
    return result_;
  }

  // Batched windows: one fault group per batch (per_batch) or per epoch
  // (per_epoch).  These policies couple consecutive windows to one
  // armed group, so they run serially and are not unit-addressable —
  // which also rules out checkpointing.
  if (!config_.checkpoint_dir.empty()) {
    throw ConfigError(
        "campaign checkpointing requires inj_policy per_image for "
        "classification (batched policies are not unit-addressable)");
  }
  if (config_.steering.enabled()) {
    throw ConfigError(
        "campaign steering (--budget/--steer/--vuln-map) requires inj_policy "
        "per_image for classification (batched policies are not "
        "unit-addressable)");
  }
  if (config_.jobs != 1) {
    ALFI_LOG(kInfo) << "inj_policy " << to_string(scenario.inj_policy)
                    << " runs serially; --jobs applies to per_image only";
  }
  prepare();
  run_batched();
  finalize();
  finish_metrics(run_watch.elapsed_seconds());
  return result_;
}

void TestErrorModelsImgClass::finish_metrics(double wall_seconds) {
  result_.skipped_injections =
      metrics_.counter("injections.skipped_batch_slot").value();
  if (config_.metrics_path.empty()) return;
  io::MetricsFileInfo info;
  info.task_kind = task_kind();
  info.jobs = config_.jobs;
  info.wall_seconds = wall_seconds;
  info.backend = resolved_backend_;
  info.numeric_type = nn::to_string(wrapper_.get_scenario().numeric_type);
  io::write_metrics_file(config_.metrics_path, metrics_, info);
}

void TestErrorModelsImgClass::run_batched() {
  const Scenario& scenario = wrapper_.get_scenario();
  const bool write_outputs = !config_.output_dir.empty();
  const std::size_t group = scenario.max_faults_per_image;
  data::ClassificationLoader loader(dataset_, scenario.batch_size);

  EvalSink out;
  ModelMonitor monitor(model_);
  monitor.set_metrics(&metrics_);
  wrapper_.injector().set_metrics(&metrics_);
  // The batched policies are not unit-addressable, so one armed window
  // is the closest analogue of an executor unit.
  util::Counter& units_total = metrics_.counter("units.total");
  util::Counter& units_computed = metrics_.counter("units.computed");
  util::Histogram& unit_ms = metrics_.histogram("campaign.unit_ms");
  std::unique_ptr<Protection> protection;
  if (config_.mitigation) {
    protection = std::make_unique<Protection>(model_, bounds_, *config_.mitigation);
    protection->set_enabled(false);
  }
  ExecContext ctx{&model_, &wrapper_.injector(), &monitor, protection.get()};
  // A short final batch changes the input shape, which replans the
  // workspaces for that window and again on the next epoch's first
  // full batch — correct either way, just two extra plan passes.
  nn::InferenceWorkspace ws_orig, ws_corr, ws_resil;
  if (config_.workspace) {
    ctx.ws_orig = &ws_orig;
    ctx.ws_corr = &ws_corr;
    ctx.ws_resil = &ws_resil;
    if (config_.diff) {
      ctx.diff = true;
      for (nn::InferenceWorkspace* ws : {&ws_corr, &ws_resil}) {
        ws->set_prefix_baseline(&ws_orig);
        ws->add_prefix_observer(&monitor);
        if (protection != nullptr) ws->add_prefix_observer(protection.get());
      }
      ctx.diff_skipped = &metrics_.counter("campaign.diff.layers_skipped");
      ctx.diff_hits = &metrics_.counter("campaign.diff.prefix_hits");
      ctx.diff_misses = &metrics_.counter("campaign.diff.prefix_misses");
    }
  }
  const std::size_t base_records = wrapper_.injector().records().size();
  FaultModelIterator iterator = wrapper_.get_fimodel_iter();

  for (std::size_t epoch = 0; epoch < scenario.num_runs; ++epoch) {
    std::size_t epoch_group_start = 0;
    if (scenario.inj_policy == InjectionPolicy::kPerEpoch) {
      iterator.next();  // consume the epoch's group
      epoch_group_start = iterator.position() - group;
      wrapper_.injector().disarm();
    }

    std::size_t images_done = 0;
    for (std::size_t b = 0; images_done < scenario.dataset_size; ++b) {
      const data::ClassificationBatch batch = loader.batch(b);
      const std::size_t use =
          std::min(batch.size(), scenario.dataset_size - images_done);

      std::size_t group_start = epoch_group_start;
      const Stopwatch window_watch;
      const std::size_t window_base = wrapper_.injector().records().size();
      const TripleOutputs trip = run_triple(ctx, batch.images, batch.images, [&] {
        if (scenario.inj_policy == InjectionPolicy::kPerBatch) {
          // Arm against the window's actual occupancy: a fault drawn
          // for a slot past the scored images of a short final batch is
          // remapped (slot % use) instead of silently skipped, so every
          // drawn fault lands on a scored image.
          iterator.next_for_window(use);
          group_start = iterator.position() - group;
        } else {
          wrapper_.injector().arm(
              wrapper_.fault_matrix().slice(epoch_group_start, group));
        }
      });
      evaluate_window(out, config_.top_k, write_outputs, *trip.orig, *trip.corr,
                      trip.resil,
                      std::span<const std::size_t>(batch.labels.data(), use),
                      std::span<const data::ImageMeta>(batch.metas.data(), use),
                      trip.window_due, epoch,
                      [&](std::size_t) {
                        return wrapper_.fault_matrix().slice(group_start, group);
                      },
                      [&](std::size_t i) {
                        // A window shares one armed group; attribute each
                        // record to the slot it landed on (weight faults and
                        // batch-agnostic faults corrupt every slot).
                        const auto& recs = wrapper_.injector().records();
                        std::size_t applied = 0;
                        for (std::size_t ri = window_base; ri < recs.size(); ++ri) {
                          const Fault& f = recs[ri].fault;
                          if (f.target == FaultTarget::kWeights || f.batch < 0 ||
                              f.batch == static_cast<std::int64_t>(i)) {
                            ++applied;
                          }
                        }
                        return applied;
                      });
      unit_ms.record(window_watch.elapsed_ms());
      units_total.add();
      units_computed.add();
      images_done += use;
    }
    wrapper_.injector().disarm();
  }
  if (config_.workspace) {
    metrics_.gauge("campaign.arena_high_water_bytes")
        .set(static_cast<double>(ws_corr.high_water_bytes()));
  }
  const auto& recs = wrapper_.injector().records();
  trace_.assign(recs.begin() + base_records, recs.end());

  kpis_.merge(out.kpis);
  result_rows_ = std::move(out.result_rows);
  fault_free_rows_ = std::move(out.fault_free_rows);
}

}  // namespace alfi::core
