#include "core/test_img_class.h"

#include <cmath>
#include <filesystem>
#include <functional>
#include <optional>
#include <tuple>

#include "core/campaign.h"
#include "io/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace alfi::core {

namespace {

/// One sample of probe input so the wrapper can profile layer geometry.
Tensor probe_input(const data::ClassificationDataset& dataset) {
  const data::ClassificationSample sample = dataset.get(0);
  const Shape& s = sample.image.shape();
  return sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
}

std::string fmt_float(float v) { return strformat("%.6g", v); }

/// Serializes the fault group applied to one image as a compact string:
/// "layer:c_out:c_in:d:h:w:bit" entries joined by ';'.
std::string faults_to_field(const std::vector<Fault>& faults) {
  std::vector<std::string> parts;
  parts.reserve(faults.size());
  for (const Fault& f : faults) {
    parts.push_back(strformat("%lld:%lld:%lld:%lld:%lld:%lld:%d",
                              static_cast<long long>(f.layer),
                              static_cast<long long>(f.channel_out),
                              static_cast<long long>(f.channel_in),
                              static_cast<long long>(f.depth),
                              static_cast<long long>(f.height),
                              static_cast<long long>(f.width), f.bit_pos));
  }
  return join(parts, ";");
}

bool row_has_nonfinite(std::span<const float> row) {
  for (const float v : row) {
    if (std::isnan(v) || std::isinf(v)) return true;
  }
  return false;
}

/// Everything one shard of the campaign produces, buffered so the merge
/// step can emit it in original column order regardless of which worker
/// finished first.
struct ShardOutput {
  ClassificationKpis kpis;
  std::vector<std::vector<std::string>> result_rows;
  std::vector<std::vector<std::string>> fault_free_rows;
  std::vector<InjectionRecord> records;
};

/// Per-thread execution resources: the model (original or deep-cloned
/// replica) plus the injection/observation machinery bound to it.
struct ExecContext {
  nn::Module* model = nullptr;
  Injector* injector = nullptr;
  ModelMonitor* monitor = nullptr;
  Protection* protection = nullptr;  // null when no mitigation configured
};

}  // namespace

TestErrorModelsImgClass::TestErrorModelsImgClass(
    nn::Module& model, const data::ClassificationDataset& dataset, Scenario scenario,
    ImgClassCampaignConfig config)
    : model_(model),
      dataset_(dataset),
      config_(std::move(config)),
      wrapper_(model, std::move(scenario), probe_input(dataset)) {
  ALFI_CHECK(wrapper_.get_scenario().dataset_size <= dataset.size(),
             "scenario dataset_size exceeds the dataset");
  // The tightly-coupled triple shares one model instance, so weight
  // corruption must be restorable between the three passes; persistence
  // across inferences is modeled by the injection policy instead.
  if (wrapper_.get_scenario().duration != FaultDuration::kTransient) {
    throw ConfigError(
        "the coupled campaign harness requires transient duration; "
        "use inj_policy per_epoch to model persistent faults");
  }
  if (!config_.fault_file.empty()) wrapper_.load_fault_matrix(config_.fault_file);
}

ImgClassCampaignResult TestErrorModelsImgClass::run() {
  const Scenario& scenario = wrapper_.get_scenario();
  ImgClassCampaignResult result;
  const bool write_outputs = !config_.output_dir.empty();

  std::vector<std::string> header{"image_id", "file_name", "gt_label",
                                  "due",      "sde",       "faults"};
  for (const char* which : {"orig", "corr", "resil"}) {
    for (std::size_t k = 1; k <= config_.top_k; ++k) {
      header.push_back(strformat("%s_top%zu_class", which, k));
      header.push_back(strformat("%s_top%zu_prob", which, k));
    }
  }
  std::vector<std::string> ff_header{"image_id", "file_name", "gt_label"};
  for (std::size_t k = 1; k <= config_.top_k; ++k) {
    ff_header.push_back(strformat("top%zu_class", k));
    ff_header.push_back(strformat("top%zu_prob", k));
  }

  if (write_outputs) {
    std::filesystem::create_directories(config_.output_dir);
    const std::string base = config_.output_dir + "/" + config_.model_name;

    result.scenario_yml = base + "_scenario.yml";
    io::Json meta = scenario.to_yaml();
    meta["meta"]["model"] = io::Json(config_.model_name);
    meta["meta"]["dataset"] = io::Json(dataset_.name());
    meta["meta"]["mitigation"] =
        io::Json(config_.mitigation ? to_string(*config_.mitigation) : "none");
    io::write_yaml_file(result.scenario_yml, meta);

    result.fault_bin = base + "_faults.bin";
    wrapper_.save_fault_matrix(result.fault_bin);
    result.results_csv = base + "_results.csv";
    result.fault_free_csv = base + "_fault_free.csv";
  }

  // Hardened path: profile activation bounds on fault-free calibration
  // batches once, up front — workers install their own Protection over
  // the same bounds, so hardened verdicts match the serial run exactly.
  data::ClassificationLoader loader(dataset_, scenario.batch_size);
  RangeMap bounds;
  if (config_.mitigation) {
    std::vector<Tensor> calibration;
    const std::size_t count =
        std::min(config_.calibration_batches, loader.num_batches());
    ALFI_CHECK(count > 0, "no calibration batches available");
    for (std::size_t b = 0; b < count; ++b) {
      calibration.push_back(loader.batch(b).images);
    }
    bounds = profile_activation_ranges(model_, calibration);
  }

  const std::size_t group = scenario.max_faults_per_image;

  // Records the verdicts and CSV rows of one window of images evaluated
  // under one armed fault group, appended to `out` for later in-order
  // emission.  `fault_group_for(i)` names the fault columns reported
  // for image i of the window.
  const auto evaluate_window =
      [&](ShardOutput& out, const Tensor& orig_logits, const Tensor& corr_logits,
          const Tensor* resil_logits, std::span<const std::size_t> labels,
          std::span<const data::ImageMeta> metas, bool window_monitor_due,
          std::size_t epoch,
          const std::function<std::vector<Fault>(std::size_t)>& fault_group_for) {
        const std::size_t k = orig_logits.dim(1);
        for (std::size_t i = 0; i < labels.size(); ++i) {
          const std::span<const float> orig_row{orig_logits.raw() + i * k, k};
          const std::span<const float> corr_row{corr_logits.raw() + i * k, k};

          const TopK orig_top = topk_of_logits(orig_row, config_.top_k);
          const TopK corr_top = topk_of_logits(corr_row, config_.top_k);
          TopK resil_top;
          if (resil_logits != nullptr) {
            const std::span<const float> resil_row{resil_logits->raw() + i * k, k};
            resil_top = topk_of_logits(resil_row, config_.top_k);
          }

          const bool due = row_has_nonfinite(corr_row) || window_monitor_due;
          const bool sde = !due && corr_top.classes[0] != orig_top.classes[0];

          ++out.kpis.total;
          out.kpis.orig_correct += orig_top.classes[0] == labels[i] ? 1 : 0;
          out.kpis.faulty_correct += corr_top.classes[0] == labels[i] ? 1 : 0;
          out.kpis.due += due ? 1 : 0;
          out.kpis.sde += sde ? 1 : 0;
          if (resil_logits != nullptr) {
            out.kpis.resil_correct += resil_top.classes[0] == labels[i] ? 1 : 0;
            out.kpis.resil_sde +=
                (!due && resil_top.classes[0] != orig_top.classes[0]) ? 1 : 0;
          }

          if (write_outputs) {
            std::vector<std::string> row{
                std::to_string(metas[i].image_id), metas[i].file_name,
                std::to_string(labels[i]), due ? "1" : "0", sde ? "1" : "0",
                faults_to_field(fault_group_for(i))};
            const auto push_topk = [&row, this](const TopK& top) {
              for (std::size_t j = 0; j < config_.top_k; ++j) {
                if (j < top.classes.size()) {
                  row.push_back(std::to_string(top.classes[j]));
                  row.push_back(fmt_float(top.probs[j]));
                } else {
                  row.push_back("");
                  row.push_back("");
                }
              }
            };
            push_topk(orig_top);
            push_topk(corr_top);
            push_topk(resil_logits != nullptr ? resil_top : TopK{});
            out.result_rows.push_back(std::move(row));

            if (epoch == 0) {
              std::vector<std::string> ff_row{std::to_string(metas[i].image_id),
                                              metas[i].file_name,
                                              std::to_string(labels[i])};
              for (std::size_t j = 0; j < config_.top_k; ++j) {
                if (j < orig_top.classes.size()) {
                  ff_row.push_back(std::to_string(orig_top.classes[j]));
                  ff_row.push_back(fmt_float(orig_top.probs[j]));
                } else {
                  ff_row.push_back("");
                  ff_row.push_back("");
                }
              }
              out.fault_free_rows.push_back(std::move(ff_row));
            }
          }
        }
      };

  // Runs the coupled triple on one input window with the fault group
  // `arm` installs, against the given execution context.
  const auto run_triple = [](ExecContext& ctx, const Tensor& images,
                             const std::function<void()>& arm) {
    ctx.injector->disarm();
    if (ctx.protection) ctx.protection->set_enabled(false);
    const Tensor orig = ctx.model->forward(images);

    arm();
    ctx.monitor->reset();
    const Tensor corr = ctx.model->forward(images);
    const bool window_due = ctx.monitor->due_detected();

    std::optional<Tensor> resil;
    if (ctx.protection) {
      ctx.protection->set_enabled(true);
      resil = ctx.model->forward(images);
      ctx.protection->set_enabled(false);
    }
    ctx.injector->disarm();
    return std::tuple<Tensor, Tensor, std::optional<Tensor>, bool>(
        std::move(orig), std::move(corr), std::move(resil), window_due);
  };

  // One per_image work unit: global step t = epoch * dataset_size + img
  // runs image `img` under fault columns [t*group, (t+1)*group).  The
  // global index keeps slice positions and trace labels independent of
  // which shard executes the step.
  const auto run_unit = [&](ExecContext& ctx, std::size_t t, ShardOutput& out) {
    const std::size_t epoch = t / scenario.dataset_size;
    const std::size_t img = t % scenario.dataset_size;
    const data::ClassificationSample sample = dataset_.get(img);
    const Shape& s = sample.image.shape();
    const Tensor input = sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
    const std::vector<Fault> faults = wrapper_.fault_matrix().slice(t * group, group);
    const auto [orig, corr, resil, window_due] = run_triple(ctx, input, [&] {
      ctx.injector->set_inference_index(t);
      ctx.injector->arm(faults);
    });
    const std::size_t labels[1] = {sample.label};
    const data::ImageMeta metas[1] = {sample.meta};
    evaluate_window(out, orig, corr, resil ? &*resil : nullptr, labels, metas,
                    window_due, epoch, [&](std::size_t) { return faults; });
  };

  std::vector<ShardOutput> outputs;

  if (scenario.inj_policy == InjectionPolicy::kPerImage) {
    const std::size_t steps = scenario.dataset_size * scenario.num_runs;
    ALFI_CHECK(wrapper_.fault_matrix().size() >= steps * group,
               "fault matrix smaller than the campaign needs: increase "
               "dataset_size/num_runs or load a larger fault file");
    const CampaignRunner runner(config_.jobs);
    const std::vector<CampaignShard> shards =
        CampaignRunner::shard_columns(steps, runner.jobs(), scenario.rnd_seed);
    outputs.resize(shards.size());

    if (shards.size() <= 1) {
      // Serial: the original model and the wrapper's injector, exactly
      // the single-threaded campaign of old.
      ModelMonitor monitor(model_);
      std::unique_ptr<Protection> protection;
      if (config_.mitigation) {
        protection = std::make_unique<Protection>(model_, bounds, *config_.mitigation);
        protection->set_enabled(false);
      }
      ExecContext ctx{&model_, &wrapper_.injector(), &monitor, protection.get()};
      const std::size_t base_records = wrapper_.injector().records().size();
      if (!shards.empty()) {
        for (std::size_t t = shards[0].begin; t < shards[0].end; ++t) {
          run_unit(ctx, t, outputs[0]);
        }
        const auto& recs = wrapper_.injector().records();
        outputs[0].records.assign(recs.begin() + base_records, recs.end());
      }
    } else {
      ALFI_LOG(kInfo) << "parallel campaign: " << steps << " inferences across "
                      << shards.size() << " shards (" << runner.jobs()
                      << " jobs)";
      const Tensor probe = probe_input(dataset_);
      runner.run_shards(shards, [&](const CampaignShard& shard) {
        // Each worker owns a full replica of the injection stack; the
        // original model is never touched, so workers share only
        // read-only state (dataset, fault matrix, calibration bounds).
        const std::shared_ptr<nn::Module> replica = model_.clone();
        ModelProfile profile(*replica, probe);
        Injector injector(*replica, profile, scenario.duration);
        ModelMonitor monitor(*replica);
        std::unique_ptr<Protection> protection;
        if (config_.mitigation) {
          protection =
              std::make_unique<Protection>(*replica, bounds, *config_.mitigation);
          protection->set_enabled(false);
        }
        ExecContext ctx{replica.get(), &injector, &monitor, protection.get()};
        ShardOutput& out = outputs[shard.index];
        for (std::size_t t = shard.begin; t < shard.end; ++t) {
          run_unit(ctx, t, out);
        }
        out.records = injector.take_records();
      });
    }
  } else {
    // Batched windows: one fault group per batch (per_batch) or per
    // epoch (per_epoch).  These policies couple consecutive windows to
    // one armed group, so they always run serially.
    if (config_.jobs != 1) {
      ALFI_LOG(kInfo) << "inj_policy " << to_string(scenario.inj_policy)
                      << " runs serially; --jobs applies to per_image only";
    }
    outputs.resize(1);
    ShardOutput& out = outputs[0];
    ModelMonitor monitor(model_);
    std::unique_ptr<Protection> protection;
    if (config_.mitigation) {
      protection = std::make_unique<Protection>(model_, bounds, *config_.mitigation);
      protection->set_enabled(false);
    }
    ExecContext ctx{&model_, &wrapper_.injector(), &monitor, protection.get()};
    const std::size_t base_records = wrapper_.injector().records().size();
    FaultModelIterator iterator = wrapper_.get_fimodel_iter();

    for (std::size_t epoch = 0; epoch < scenario.num_runs; ++epoch) {
      std::size_t epoch_group_start = 0;
      if (scenario.inj_policy == InjectionPolicy::kPerEpoch) {
        iterator.next();  // consume the epoch's group
        epoch_group_start = iterator.position() - group;
        wrapper_.injector().disarm();
      }

      std::size_t images_done = 0;
      for (std::size_t b = 0; images_done < scenario.dataset_size; ++b) {
        const data::ClassificationBatch batch = loader.batch(b);
        const std::size_t use =
            std::min(batch.size(), scenario.dataset_size - images_done);

        std::size_t group_start = epoch_group_start;
        const auto [orig, corr, resil, window_due] =
            run_triple(ctx, batch.images, [&] {
              if (scenario.inj_policy == InjectionPolicy::kPerBatch) {
                iterator.next();
                group_start = iterator.position() - group;
              } else {
                wrapper_.injector().arm(
                    wrapper_.fault_matrix().slice(epoch_group_start, group));
              }
            });
        evaluate_window(out, orig, corr, resil ? &*resil : nullptr,
                        std::span<const std::size_t>(batch.labels.data(), use),
                        std::span<const data::ImageMeta>(batch.metas.data(), use),
                        window_due, epoch, [&](std::size_t) {
                          return wrapper_.fault_matrix().slice(group_start, group);
                        });
        images_done += use;
      }
      wrapper_.injector().disarm();
    }
    const auto& recs = wrapper_.injector().records();
    out.records.assign(recs.begin() + base_records, recs.end());
  }

  // ---- merge: ascending shard order restores the serial column order ----
  ClassificationKpis kpis;
  kpis.has_resil = config_.mitigation.has_value();
  std::vector<InjectionRecord> trace;
  for (const ShardOutput& out : outputs) {
    kpis.merge(out.kpis);
    trace.insert(trace.end(), out.records.begin(), out.records.end());
  }

  if (write_outputs) {
    io::CsvWriter results_csv(result.results_csv, header);
    io::CsvWriter fault_free_csv(result.fault_free_csv, ff_header);
    for (const ShardOutput& out : outputs) {
      for (const auto& row : out.result_rows) results_csv.write_row(row);
      for (const auto& row : out.fault_free_rows) fault_free_csv.write_row(row);
    }
    results_csv.close();
    fault_free_csv.close();

    result.trace_bin = config_.output_dir + "/" + config_.model_name + "_trace.bin";
    save_injection_records(trace, result.trace_bin);
  }

  result.kpis = kpis;
  return result;
}

}  // namespace alfi::core
