// TestErrorModelsImgClass — the high-level classification campaign
// harness (paper §V.B, test_error_models_imgclass.py).
//
// Runs the tightly-coupled triple (original / fault-injected / hardened
// "resil" model) over a metadata-enriched dataset and produces the three
// output sets of §V.F.1:
//   a) meta-files: the effective scenario as YAML plus run metadata,
//   b) binary fault files: the pre-generated fault matrix and the
//      post-run corruption trace (original/corrupted values, flip
//      directions),
//   c) model outputs: per-image CSV with ground truth, top-K classes
//      and probabilities for all three models, fault locations, and
//      SDE/DUE verdicts; plus a separate fault-free CSV.
//
// "Tight coupling" means all three verdicts for one image come from the
// same input tensor and the same armed fault set, so effects can be
// analyzed "at a granular level of a single fault location and input
// data point" (paper §I).
#pragma once

#include <optional>
#include <string>

#include "core/kpi.h"
#include "core/mitigation.h"
#include "core/monitor.h"
#include "core/wrapper.h"
#include "data/dataloader.h"

namespace alfi::core {

struct ImgClassCampaignConfig {
  std::string model_name = "model";
  /// Directory for the output sets; empty = write nothing (KPIs only).
  std::string output_dir;
  /// Reuse a persisted fault matrix instead of generating one.
  std::string fault_file;
  /// Harden a copy of the inference path with Ranger or Clipper and
  /// report the hardened verdicts alongside.
  std::optional<MitigationKind> mitigation;
  /// Batches of calibration data for range profiling (defaults to the
  /// first few dataset batches when empty).
  std::size_t calibration_batches = 4;
  std::size_t top_k = 5;
  /// Worker threads for the per_image campaign (CampaignRunner).  1 =
  /// serial on the wrapped model; 0 = hardware concurrency; N > 1 runs
  /// N deep-cloned model replicas over contiguous fault-matrix shards.
  /// Output (KPIs, CSVs, trace) is byte-identical for every job count.
  /// Batched policies (per_batch / per_epoch) always run serially.
  std::size_t jobs = 1;
};

struct ImgClassCampaignResult {
  ClassificationKpis kpis;
  std::string results_csv;     // per-image faulty-run results ("" if not written)
  std::string fault_free_csv;  // fault-free outputs
  std::string scenario_yml;    // effective scenario meta-file
  std::string fault_bin;       // pre-generated fault matrix
  std::string trace_bin;       // post-run injection records
};

class TestErrorModelsImgClass {
 public:
  TestErrorModelsImgClass(nn::Module& model,
                          const data::ClassificationDataset& dataset,
                          Scenario scenario, ImgClassCampaignConfig config);

  /// Runs the complete campaign (num_runs epochs over dataset_size
  /// images) and writes all output sets.
  ImgClassCampaignResult run();

  PtfiWrap& wrapper() { return wrapper_; }

 private:
  nn::Module& model_;
  const data::ClassificationDataset& dataset_;
  ImgClassCampaignConfig config_;
  PtfiWrap wrapper_;
};

}  // namespace alfi::core
