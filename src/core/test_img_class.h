// TestErrorModelsImgClass — the high-level classification campaign
// harness (paper §V.B, test_error_models_imgclass.py).
//
// Runs the tightly-coupled triple (original / fault-injected / hardened
// "resil" model) over a metadata-enriched dataset and produces the three
// output sets of §V.F.1:
//   a) meta-files: the effective scenario as YAML plus run metadata,
//   b) binary fault files: the pre-generated fault matrix and the
//      post-run corruption trace (original/corrupted values, flip
//      directions),
//   c) model outputs: per-image CSV with ground truth, top-K classes
//      and probabilities for all three models, fault locations, and
//      SDE/DUE verdicts; plus a separate fault-free CSV.
//
// "Tight coupling" means all three verdicts for one image come from the
// same input tensor and the same armed fault set, so effects can be
// analyzed "at a granular level of a single fault location and input
// data point" (paper §I).
//
// The per_image policy runs through core::CampaignExecutor as a
// CampaignTask: the executor owns sharding, journaling and
// checkpoint/resume; this class contributes the unit computation
// (one image under one fault group) and the ordered merge.  Batched
// policies (per_batch / per_epoch) couple consecutive windows to one
// armed group and keep the legacy serial loop (no checkpointing).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/campaign_task.h"
#include "core/kpi.h"
#include "core/mitigation.h"
#include "core/monitor.h"
#include "core/wrapper.h"
#include "data/dataloader.h"
#include "nn/quantize.h"
#include "util/metrics.h"

namespace alfi::core {

struct ImgClassCampaignConfig : CampaignConfigBase {
  /// Batches of calibration data for range profiling (defaults to the
  /// first few dataset batches when empty).
  std::size_t calibration_batches = 4;
  std::size_t top_k = 5;
};

struct ImgClassCampaignResult {
  ClassificationKpis kpis;
  /// Injector-level skip backstop (Injector::skipped_injection_count()).
  /// Campaign-generated per-batch faults are remapped onto the actual
  /// window occupancy before arming (slot % occupancy), so this stays 0
  /// for generated matrices; loaded fault files hand-crafted with
  /// out-of-range slots on per_image campaigns still surface here.
  std::size_t skipped_injections = 0;
  std::string results_csv;     // per-image faulty-run results ("" if not written)
  std::string fault_free_csv;  // fault-free outputs
  std::string scenario_yml;    // effective scenario meta-file
  std::string fault_bin;       // pre-generated fault matrix
  std::string trace_bin;       // post-run injection records
};

class ImgClassUnitRunner;

class TestErrorModelsImgClass final : public CampaignTask {
 public:
  TestErrorModelsImgClass(nn::Module& model,
                          const data::ClassificationDataset& dataset,
                          Scenario scenario, ImgClassCampaignConfig config);

  /// Runs the complete campaign (num_runs epochs over dataset_size
  /// images) and writes all output sets.
  ImgClassCampaignResult run();

  PtfiWrap& wrapper() { return wrapper_; }

  /// Campaign telemetry, populated during run().  Written to
  /// config.metrics_path (when set) and readable afterwards regardless.
  const util::MetricsRegistry& metrics() const { return metrics_; }

  // ---- CampaignTask ----------------------------------------------------------
  std::string task_kind() const override { return "imgclass"; }
  const Scenario& task_scenario() const override { return wrapper_.get_scenario(); }
  const CampaignConfigBase& base_config() const override { return config_; }
  std::size_t unit_count() const override;
  std::uint64_t fingerprint() const override;
  void prepare() override;
  std::unique_ptr<CampaignUnitRunner> make_unit_runner(bool shared_model) override;
  /// Unbounded for neuron-fault campaigns (each unit's group arms on its
  /// own batch slot); 1 when any fault targets weights — weights are
  /// shared across a packed pass, so those campaigns stay unit-at-a-time.
  std::size_t max_unit_pack() const override;
  /// dataset_size when the scenario runs multiple epochs: a pack then
  /// holds the SAME image under different epochs' fault groups, so the
  /// runner computes the fault-free pass once per pack (DESIGN.md §12).
  std::size_t unit_pack_stride() const override;
  /// Unit t's (layer, bit, fault-type) stratum, from its group's first
  /// fault; empty (unsteerable) for batched injection policies.
  std::vector<SteeringCellKey> steering_cells() const override;
  /// SDC/DUE/skip verdict straight from the unit payload's KPI counters
  /// and record count.
  SteeringUnitOutcome classify_unit(std::size_t t,
                                    const std::string& payload) const override;
  void absorb_unit(std::size_t t, const std::string& payload) override;
  void finalize() override;

 private:
  friend class ImgClassUnitRunner;

  void run_batched();
  void finish_metrics(double wall_seconds);

  nn::Module& model_;
  const data::ClassificationDataset& dataset_;
  ImgClassCampaignConfig config_;
  // Declared before wrapper_: the wrapper's injector reports restore
  // counts while being destroyed, so the registry must outlive it.
  util::MetricsRegistry metrics_;
  PtfiWrap wrapper_;

  // Campaign state between prepare() and finalize().
  RangeMap bounds_;  ///< mitigation calibration, shared by all workers
  /// Stored-weight representation of the primary model (stored numeric
  /// types only).  Built once — rebuilding from the already-dequantized
  /// values on an idempotent re-prepare could round scales differently.
  /// Replica runners copy it bit-exact (StoredWeightStore replica ctor).
  std::optional<nn::StoredWeightStore> store_;
  std::string resolved_backend_;  ///< registry name of what actually ran
  std::vector<std::string> header_;
  std::vector<std::string> ff_header_;
  ClassificationKpis kpis_;
  std::vector<std::vector<std::string>> result_rows_;
  std::vector<std::vector<std::string>> fault_free_rows_;
  std::vector<InjectionRecord> trace_;
  ImgClassCampaignResult result_;
};

}  // namespace alfi::core
