#include "core/model_profile.h"

namespace alfi::core {

ModelProfile::ModelProfile(nn::Module& model, const Tensor& sample_input) {
  // Pass 1: collect injectable layers in traversal order, resolving
  // each leaf's advertised target inventory.  Historically injectable
  // kinds (conv2d/conv3d/linear) always advertise a weight site, so
  // their LayerInfo is bit-compatible with the pre-inventory profiler.
  model.for_each_module([this](const std::string& path, nn::Module& m) {
    nn::TargetInventory inventory = m.target_inventory();
    if (!inventory.injectable) return;
    ALFI_CHECK(m.kind() != nn::LayerKind::kOther,
               "injectable layer must advertise a layer kind: " + path);
    LayerInfo info;
    info.index = layers_.size();
    info.path = path;
    info.module = &m;
    info.kind = m.kind();
    info.weight = inventory.weight;
    info.weight_role = inventory.weight != nullptr ? inventory.weight_role : "";
    info.output_role = inventory.output_role;
    if (inventory.weight != nullptr) {
      info.weight_shape = inventory.weight->value.shape();
      info.weight_count = inventory.weight->value.numel();
    }
    layers_.push_back(std::move(info));
  });
  ALFI_CHECK(!layers_.empty(), "model has no injectable layers");

  // Pass 2: probe forward with shape-recording hooks.
  std::vector<nn::HookHandle> handles(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    LayerInfo* info = &layers_[i];
    handles[i] = info->module->register_forward_hook(
        [info](nn::Module&, const Tensor&, Tensor& output) {
          ALFI_CHECK(output.rank() >= 2, "layer output must be batched");
          std::vector<std::size_t> dims(output.shape().dims().begin() + 1,
                                        output.shape().dims().end());
          info->output_shape = Shape(dims);
          info->neuron_count = info->output_shape.numel();
        });
  }
  model.probe_forward(sample_input);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].module->remove_forward_hook(handles[i]);
  }

  for (const LayerInfo& info : layers_) {
    ALFI_CHECK(info.neuron_count > 0,
               "probe forward did not reach layer " + info.path);
    total_weights_ += info.weight_count;
    total_neurons_ += info.neuron_count;
  }
}

const LayerInfo& ModelProfile::layer(std::size_t index) const {
  ALFI_CHECK(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

std::vector<double> ModelProfile::size_weights(
    const std::vector<std::size_t>& layer_indices, bool use_weights) const {
  // Eq.(1): F_i = size_i / sum(size) — the denominator cancels in the
  // weighted draw, so raw sizes are returned (weighted_index normalizes).
  std::vector<double> weights;
  weights.reserve(layer_indices.size());
  for (const std::size_t index : layer_indices) {
    const LayerInfo& info = layer(index);
    weights.push_back(static_cast<double>(use_weights ? info.weight_count
                                                      : info.neuron_count));
  }
  return weights;
}

}  // namespace alfi::core
