// KPI generation (paper §V.F).
//
// Classification: top-K records, SDE (silent data error: the fault
// changed the top-1 class without announcing itself) and DUE (the
// corruption surfaced as NaN/Inf) rates.
//
// Object detection: COCO-style AP/AR and the image-wise IVMOD metrics
// of Qutub et al. [5] — IVMOD_SDE counts images whose *detections*
// changed versus the fault-free run of the same model (new/missing/
// re-classified objects), IVMOD_DUE counts images whose inference
// produced NaN/Inf.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.h"
#include "models/detection.h"

namespace alfi::core {

// ---- classification ----------------------------------------------------------

struct TopK {
  std::vector<std::size_t> classes;  // descending by probability
  std::vector<float> probs;
};

/// Top-k classes + softmax probabilities of one logits row.
TopK topk_of_logits(std::span<const float> logits, std::size_t k);

/// Aggregated classification campaign counters.
struct ClassificationKpis {
  std::size_t total = 0;
  std::size_t orig_correct = 0;
  std::size_t faulty_correct = 0;
  std::size_t resil_correct = 0;
  std::size_t sde = 0;         // top-1 changed, no DUE signal
  std::size_t due = 0;         // NaN/Inf observed during faulty inference
  std::size_t resil_sde = 0;   // SDE surviving the mitigation
  bool has_resil = false;

  /// Accumulates another (disjoint) window of the same campaign — used
  /// by the parallel runner to fold per-shard counters back together.
  /// Counter addition commutes, so the merged KPIs are independent of
  /// shard count and merge order.
  void merge(const ClassificationKpis& other) {
    total += other.total;
    orig_correct += other.orig_correct;
    faulty_correct += other.faulty_correct;
    resil_correct += other.resil_correct;
    sde += other.sde;
    due += other.due;
    resil_sde += other.resil_sde;
    has_resil = has_resil || other.has_resil;
  }

  double orig_accuracy() const { return ratio(orig_correct); }
  double faulty_accuracy() const { return ratio(faulty_correct); }
  double resil_accuracy() const { return ratio(resil_correct); }
  double sde_rate() const { return ratio(sde); }
  double due_rate() const { return ratio(due); }
  double resil_sde_rate() const { return ratio(resil_sde); }

 private:
  double ratio(std::size_t count) const {
    return total == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(total);
  }
};

// ---- object detection ----------------------------------------------------------

/// COCO-style evaluation summary.
struct CocoSummary {
  double ap_50 = 0.0;        // AP @ IoU 0.50
  double ap_75 = 0.0;        // AP @ IoU 0.75
  double ap_5095 = 0.0;      // AP @ IoU .50:.05:.95 (the COCO "AP")
  double ar_100 = 0.0;       // AR @ IoU .50:.05:.95, up to 100 dets
};

/// COCO evaluation constants.  The IoU thresholds are generated from
/// integer steps 50..95 step 5 — never by accumulating floats — so the
/// set is exact and ap_50/ap_75 select by step index, not by comparing
/// drifted floats.
inline constexpr int kCocoIouSteps = 10;
inline constexpr int kCocoAp75Step = 5;  ///< step index of IoU 0.75
/// COCO maxDets: at most this many detections per image (by score) are
/// evaluated, for AP and AR alike.
inline constexpr std::size_t kCocoMaxDetections = 100;

/// The exact thresholds 0.50, 0.55, ..., 0.95 (kCocoIouSteps entries).
std::vector<float> coco_iou_thresholds();

/// Per-image inputs: ground truth and predictions aligned by index.
/// Applies the kCocoMaxDetections per-image cap before matching.
CocoSummary evaluate_coco(
    const std::vector<std::vector<data::Annotation>>& ground_truth,
    const std::vector<std::vector<models::Detection>>& detections,
    std::size_t num_classes);

/// Average precision for one class at one IoU threshold (101-point
/// COCO interpolation); exposed for tests.
double average_precision(
    const std::vector<std::vector<data::Annotation>>& ground_truth,
    const std::vector<std::vector<models::Detection>>& detections,
    std::size_t category, float iou_threshold);

/// True if the faulty detection set differs from the fault-free one:
/// any original detection without an IoU>=threshold same-class faulty
/// counterpart (FN), or any faulty detection without an original
/// counterpart (FP).
bool detections_differ(const std::vector<models::Detection>& original,
                       const std::vector<models::Detection>& faulty,
                       float iou_threshold = 0.5f);

struct IvmodKpis {
  std::size_t total = 0;
  std::size_t sde_images = 0;
  std::size_t due_images = 0;
  std::size_t resil_sde_images = 0;
  bool has_resil = false;

  double sde_rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(sde_images) / static_cast<double>(total);
  }
  double due_rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(due_images) / static_cast<double>(total);
  }
  double resil_sde_rate() const {
    return total == 0
               ? 0.0
               : static_cast<double>(resil_sde_images) / static_cast<double>(total);
  }
};

}  // namespace alfi::core
