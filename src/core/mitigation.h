// Activation-range mitigations: Ranger and Clipper.
//
// The paper's Fig. 2a compares unprotected models against models
// hardened with the range-supervision techniques of Geissler et al. [6]:
//   * Ranger  — out-of-range activation values are *truncated* to the
//     profiled range.
//   * Clipper — out-of-range activation values are *zeroed*.
// Bounds are profiled per activation layer on fault-free data; the
// protection is installed as forward hooks on the hardened ("resil")
// model instance, running after any injection hooks upstream.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/module.h"
#include "nn/workspace.h"

namespace alfi::core {

struct RangeBounds {
  float lo = 0.0f;
  float hi = 0.0f;
};

/// Per-layer activation bounds keyed by module path.
using RangeMap = std::map<std::string, RangeBounds>;

/// Records min/max activation values per activation layer while the
/// caller runs fault-free inferences; detach happens on destruction.
class ActivationRangeProfiler {
 public:
  explicit ActivationRangeProfiler(nn::Module& model);
  ~ActivationRangeProfiler();
  ActivationRangeProfiler(const ActivationRangeProfiler&) = delete;
  ActivationRangeProfiler& operator=(const ActivationRangeProfiler&) = delete;

  const RangeMap& bounds() const { return bounds_; }

 private:
  struct Attachment {
    nn::Module* module;
    nn::HookHandle handle;
  };
  std::vector<Attachment> attachments_;
  RangeMap bounds_;
};

/// True for layer types whose outputs are range-supervised (activations).
bool is_activation_layer(const nn::Module& module);

/// Profiles bounds by running every batch the callback provides.
RangeMap profile_activation_ranges(nn::Module& model,
                                   const std::vector<Tensor>& calibration_batches);

enum class MitigationKind { kRanger, kClipper };

const char* to_string(MitigationKind kind);

/// Installs range-supervision hooks on `model`'s activation layers;
/// hooks are removed on destruction.  `bounds` paths must match the
/// model's activation-layer paths (same architecture as the profiled
/// model).
///
/// As a differential-inference PrefixObserver, Protection vetoes the
/// replay of any cached activation its clamp would alter (out-of-range
/// or NaN values while enabled): the workspace then materializes the
/// leaf and runs the real hook, so clamped values and the corrections()
/// count match a full recompute exactly.  In-range cached outputs are
/// clamp-identities, so skipping them is side-effect free.
class Protection : public nn::PrefixObserver {
 public:
  Protection(nn::Module& model, const RangeMap& bounds, MitigationKind kind);
  ~Protection();
  Protection(const Protection&) = delete;
  Protection& operator=(const Protection&) = delete;

  MitigationKind kind() const { return kind_; }
  std::size_t protected_layer_count() const { return attachments_.size(); }

  /// Protection can be toggled so one model instance can serve both the
  /// "faulty" and the "resil" pass of a tightly-coupled campaign.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Total activation values altered by the protection so far.
  std::size_t corrections() const { return corrections_; }
  void reset_corrections() { corrections_ = 0; }

  /// PrefixObserver: true iff this protection's hook would leave
  /// `cached` unchanged (disabled, unprotected layer, or all values
  /// in range and finite).  Side-effect free.
  bool can_replay(const nn::Module& module, const Tensor& cached) override;

 private:
  struct Attachment {
    nn::Module* module;
    nn::HookHandle handle;
  };
  MitigationKind kind_;
  std::vector<Attachment> attachments_;
  std::unordered_map<const nn::Module*, RangeBounds> module_bounds_;
  std::size_t corrections_ = 0;
  bool enabled_ = true;
};

}  // namespace alfi::core
