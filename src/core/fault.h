// Fault definition — one column of the Table I fault matrix.
//
// Paper §IV.B: "All faults are generated as a matrix before the
// inference run ... Each column in the matrix contains a single fault.
// Fault definitions comprise the fault location and value."  Neuron
// faults use rows (Batch, Layer, Channel, Depth, Height, Width, Value);
// weight faults replace Batch with nothing and use (Layer, OutChannel,
// InChannel, [Depth,] Height, Width, Value).  -1 marks a coordinate a
// given layer geometry does not use.
#pragma once

#include <cstdint>
#include <string>

#include "core/scenario.h"
#include "tensor/shape.h"

namespace alfi::core {

struct Fault {
  FaultTarget target = FaultTarget::kNeurons;
  ValueType value_type = ValueType::kBitFlip;

  // ---- location (Table I rows) -------------------------------------------
  std::int64_t batch = -1;        // image slot within a batch (neuron faults)
  std::int64_t layer = -1;        // index among injectable layers
  std::int64_t channel_out = -1;  // neuron: channel; weight: output channel
  std::int64_t channel_in = -1;   // weight faults: input channel
  std::int64_t depth = -1;        // conv3d only
  std::int64_t height = -1;       // y (conv kernels / activations)
  std::int64_t width = -1;        // x; linear activations use width as index

  // ---- value (Table I "Value" row) -----------------------------------------
  int bit_pos = -1;           // bit flip / stuck-at position
  float number_value = 0.0f;  // random-value faults

  /// Flat offset into a per-sample neuron tensor of the given shape
  /// (rank 1 = linear [F], rank 3 = conv2d [C,H,W], rank 4 = conv3d
  /// [C,D,H,W]).
  std::size_t neuron_offset(const Shape& output_shape) const;

  /// Flat offset into a weight tensor of the given shape (rank 2 =
  /// linear [OUT,IN], rank 4 = conv2d [OC,IC,KH,KW], rank 5 = conv3d).
  std::size_t weight_offset(const Shape& weight_shape) const;

  /// Applies this fault's value transformation to `original`.
  float corrupt(float original) const;

  std::string to_string() const;
};

/// One applied fault with before/after values, recorded during the run
/// (paper §IV.B: the second binary file holds "the original and altered
/// values of the neuron/weight before and after the fault injection
/// run", plus the flip direction).
struct InjectionRecord {
  Fault fault;
  std::size_t inference_index = 0;  // which iterator step applied it
  float original_value = 0.0f;
  float corrupted_value = 0.0f;
  std::string flip_direction;  // "0->1" / "1->0" for bit flips, else ""
};

}  // namespace alfi::core
