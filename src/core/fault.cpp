#include "core/fault.h"

#include <sstream>

#include "tensor/bits.h"

namespace alfi::core {

namespace {

std::size_t checked(std::int64_t value, std::size_t bound, const char* what) {
  ALFI_CHECK(value >= 0 && static_cast<std::size_t>(value) < bound,
             std::string("fault coordinate out of range: ") + what + "=" +
                 std::to_string(value) + " bound=" + std::to_string(bound));
  return static_cast<std::size_t>(value);
}

}  // namespace

std::size_t Fault::neuron_offset(const Shape& output_shape) const {
  switch (output_shape.rank()) {
    case 1:  // linear output [F]
      return checked(width, output_shape[0], "width/feature");
    case 2: {  // e.g. GlobalAvgPool output [C] is rank1; [C,F] unusual but allowed
      const std::size_t c = checked(channel_out, output_shape[0], "channel");
      const std::size_t x = checked(width, output_shape[1], "width");
      return c * output_shape[1] + x;
    }
    case 3: {  // conv2d output [C,H,W]
      const std::size_t c = checked(channel_out, output_shape[0], "channel");
      const std::size_t y = checked(height, output_shape[1], "height");
      const std::size_t x = checked(width, output_shape[2], "width");
      return (c * output_shape[1] + y) * output_shape[2] + x;
    }
    case 4: {  // conv3d output [C,D,H,W]
      const std::size_t c = checked(channel_out, output_shape[0], "channel");
      const std::size_t d = checked(depth, output_shape[1], "depth");
      const std::size_t y = checked(height, output_shape[2], "height");
      const std::size_t x = checked(width, output_shape[3], "width");
      return ((c * output_shape[1] + d) * output_shape[2] + y) * output_shape[3] + x;
    }
    default:
      throw Error("unsupported neuron tensor rank: " +
                  std::to_string(output_shape.rank()));
  }
}

std::size_t Fault::weight_offset(const Shape& weight_shape) const {
  switch (weight_shape.rank()) {
    case 1:  // layernorm gain [F]
      return checked(width, weight_shape[0], "width/feature");
    case 2: {  // linear [OUT, IN]; embedding [V, E]
      const std::size_t o = checked(channel_out, weight_shape[0], "out_channel");
      const std::size_t i = checked(channel_in, weight_shape[1], "in_channel");
      return o * weight_shape[1] + i;
    }
    case 4: {  // conv2d [OC, IC, KH, KW]
      const std::size_t o = checked(channel_out, weight_shape[0], "out_channel");
      const std::size_t i = checked(channel_in, weight_shape[1], "in_channel");
      const std::size_t y = checked(height, weight_shape[2], "kernel_y");
      const std::size_t x = checked(width, weight_shape[3], "kernel_x");
      return ((o * weight_shape[1] + i) * weight_shape[2] + y) * weight_shape[3] + x;
    }
    case 5: {  // conv3d [OC, IC, KD, KH, KW]
      const std::size_t o = checked(channel_out, weight_shape[0], "out_channel");
      const std::size_t i = checked(channel_in, weight_shape[1], "in_channel");
      const std::size_t d = checked(depth, weight_shape[2], "kernel_d");
      const std::size_t y = checked(height, weight_shape[3], "kernel_y");
      const std::size_t x = checked(width, weight_shape[4], "kernel_x");
      return (((o * weight_shape[1] + i) * weight_shape[2] + d) * weight_shape[3] +
              y) *
                 weight_shape[4] +
             x;
    }
    default:
      throw Error("unsupported weight tensor rank: " +
                  std::to_string(weight_shape.rank()));
  }
}

float Fault::corrupt(float original) const {
  switch (value_type) {
    case ValueType::kBitFlip:
      return bits::flip_bit(original, bit_pos);
    case ValueType::kStuckAt0:
      return bits::set_bit(original, bit_pos, false);
    case ValueType::kStuckAt1:
      return bits::set_bit(original, bit_pos, true);
    case ValueType::kRandomValue:
      return number_value;
  }
  return original;
}

std::string Fault::to_string() const {
  std::ostringstream os;
  os << core::to_string(target) << "[layer=" << layer;
  if (target == FaultTarget::kNeurons) {
    os << " batch=" << batch << " c=" << channel_out;
  } else {
    os << " oc=" << channel_out << " ic=" << channel_in;
  }
  if (depth >= 0) os << " d=" << depth;
  os << " y=" << height << " x=" << width;
  if (value_type == ValueType::kRandomValue) {
    os << " value=" << number_value;
  } else {
    os << " bit=" << bit_pos;
  }
  os << "]";
  return os.str();
}

}  // namespace alfi::core
