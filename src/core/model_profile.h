// Model profiling: enumerate injectable layers and their geometries.
//
// Fault generation needs, per injectable layer: its index among
// injectable layers (the "Layer" row of Table I), its weight tensor
// shape, and its *output* tensor shape — the latter is only known at
// run time, so the profiler performs one probe inference with
// shape-recording hooks attached (the same mechanism PyTorchFI uses to
// discover neuron geometries).
//
// What counts as injectable, and which tensors a layer exposes, is
// advertised by the layer itself through nn::Module::target_inventory()
// — the layer-kind-aware seam that lets weight-less sites (attention
// probabilities, the residual stream) participate in neuron injection
// while conv/linear layers profile exactly as before.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace alfi::core {

struct LayerInfo {
  std::size_t index = 0;        // position among injectable layers, 0-based
  std::string path;             // module path, e.g. "features.3"
  nn::Module* module = nullptr;
  nn::LayerKind kind = nn::LayerKind::kOther;
  nn::Parameter* weight = nullptr;  // weight-fault site, or nullptr
  std::string weight_role;      // semantic role of the weight site ("" if none)
  std::string output_role;      // semantic role of the output tensor
  Shape weight_shape;           // conv2d [OC,IC,KH,KW]; conv3d +KD; linear [OUT,IN]
  Shape output_shape;           // per-sample shape (batch axis stripped)
  std::size_t weight_count = 0; // 0 for weight-less sites (attn probs, residual)
  std::size_t neuron_count = 0; // elements of output_shape

  bool has_weight() const { return weight != nullptr; }
};

class ModelProfile {
 public:
  /// Profiles `model` by walking its module tree and running one probe
  /// forward with `sample_input` (a batch; batch size 1 is enough).
  ModelProfile(nn::Module& model, const Tensor& sample_input);

  const std::vector<LayerInfo>& layers() const { return layers_; }
  std::size_t layer_count() const { return layers_.size(); }
  const LayerInfo& layer(std::size_t index) const;

  std::size_t total_weight_count() const { return total_weights_; }
  std::size_t total_neuron_count() const { return total_neurons_; }

  /// Eq.(1) weight factors F_i over the given layer subset, computed
  /// from weight counts (weight faults) or neuron counts (neuron faults).
  std::vector<double> size_weights(const std::vector<std::size_t>& layer_indices,
                                   bool use_weights) const;

 private:
  std::vector<LayerInfo> layers_;
  std::size_t total_weights_ = 0;
  std::size_t total_neurons_ = 0;
};

}  // namespace alfi::core
