// CampaignRunner — deterministic sharded execution of fault-injection
// campaigns across worker threads — and CampaignExecutor, the
// crash-safe driver that runs any CampaignTask with journaling,
// checkpoint/resume and graceful drain.
//
// Per-fault-config independence makes FI campaigns embarrassingly
// parallel (the pre-generated fault matrix fixes every fault location
// before the first inference), so a campaign of N work units can be
// split into contiguous shards, each executed by one worker against its
// own deep-cloned model replica (nn::Module::clone()), its own Injector
// and its own child RNG stream, and merged back in shard order.
//
// Determinism guarantee: the shard boundaries depend only on (count,
// jobs), every work unit carries its global index, and the merge
// concatenates shard outputs in ascending shard order — so the merged
// result of `--jobs N` is byte-identical to the serial `--jobs 1` run.
// The per-shard RNG is derived from (seed, shard.begin) alone, keeping
// any future stochastic per-shard behavior reproducible as well.
//
// Crash safety (DESIGN.md §8): with a checkpoint directory configured,
// every completed unit's serialized result is appended to a
// CRC32-framed journal and a checkpoint (atomic temp+rename) records
// the campaign fingerprint and per-shard high-water marks.  A resumed
// run validates the fingerprint, truncates any torn journal tail,
// replays intact units from the journal and computes only the rest —
// the merged outputs are byte-identical to an uninterrupted run for any
// job count, because final outputs are only ever produced from unit
// payloads absorbed in ascending unit order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign_task.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace alfi::core {

/// One contiguous range of campaign work units, [begin, end), plus the
/// worker's independent child RNG stream.
struct CampaignShard {
  std::size_t index = 0;  ///< merge position (ascending = serial order)
  std::size_t begin = 0;  ///< first global work-unit index (inclusive)
  std::size_t end = 0;    ///< one past the last work-unit index

  /// Child stream seeded from (campaign seed, begin): identical for the
  /// same range regardless of how many workers run the campaign.
  Rng rng;

  std::size_t size() const { return end - begin; }
};

class CampaignRunner {
 public:
  /// `jobs` worker threads; 0 selects default_job_count().
  explicit CampaignRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Hardware concurrency, with a floor of 1 when it is unknown.
  static std::size_t default_job_count();

  /// Partitions [0, count) into at most `jobs` contiguous shards of
  /// near-equal size (the first count % jobs shards get one extra unit).
  /// Every unit is covered exactly once; shards come back in merge
  /// order.  `seed` feeds each shard's child RNG stream.
  static std::vector<CampaignShard> shard_columns(std::size_t count,
                                                  std::size_t jobs,
                                                  std::uint64_t seed);

  /// Executes `work` once per shard: inline on the calling thread when
  /// there is a single shard, otherwise one std::thread per shard.  If
  /// any worker throws, the first exception (in shard order) is
  /// rethrown on the calling thread after all workers joined.
  void run_shards(const std::vector<CampaignShard>& shards,
                  const std::function<void(const CampaignShard&)>& work) const;

 private:
  std::size_t jobs_;
};

/// Thrown when a campaign drains to its checkpoint instead of
/// finishing: a drain request (SIGINT/SIGTERM or the config's interrupt
/// callback) stopped workers between units.  The journal and checkpoint
/// are durable at throw time; re-running with resume=true completes the
/// campaign with byte-identical outputs.
class CampaignInterrupted : public Error {
 public:
  CampaignInterrupted(std::size_t completed, std::size_t total,
                      std::string checkpoint_dir);

  std::size_t completed_units() const { return completed_; }
  std::size_t total_units() const { return total_; }
  const std::string& checkpoint_dir() const { return checkpoint_dir_; }

 private:
  std::size_t completed_;
  std::size_t total_;
  std::string checkpoint_dir_;
};

/// Per-shard progress recorded in the checkpoint file: the shard's
/// range at checkpoint time plus its high-water mark (first unit not
/// yet completed).  On resume the executor re-derives shards for the
/// *current* job count and re-arms each shard's RNG fork at its first
/// incomplete unit; the persisted marks are validation/telemetry.
struct ShardWaterMark {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t high_water = 0;
};

/// Checkpoint file contents (checkpoint.bin, atomic temp+rename).
struct CampaignCheckpoint {
  std::uint64_t fingerprint = 0;
  std::string task_kind;
  std::uint64_t unit_count = 0;
  std::uint64_t completed_units = 0;
  std::uint64_t rnd_seed = 0;
  std::uint64_t journal_valid_bytes = 0;
  std::vector<ShardWaterMark> shards;

  void save(const std::string& path) const;
  static CampaignCheckpoint load(const std::string& path);
};

/// Crash-safety bookkeeping shared by the threaded executor and the
/// fleet coordinator (core/fleet.h): payload/completion state, resume
/// recovery, the journal writer, checkpoint cadence and the final
/// ordered merge.  Not thread-safe — the executor serializes calls
/// under its merge mutex; the single-threaded coordinator needs no
/// lock.
///
/// Lifecycle: recover() (before task.prepare()) -> open() (after) ->
/// any number of store()/absorb_ascending() rounds -> close() ->
/// merge().  A drained run calls flush_pending() before close() so
/// computed-but-unabsorbed pack payloads reach the journal instead of
/// being recomputed on resume.
class CampaignProgress {
 public:
  /// Watermark provider for checkpoint writes: the executor reports
  /// per-shard high-water marks, the fleet coordinator one global mark.
  using WaterMarks = std::function<std::vector<ShardWaterMark>()>;

  /// Resolves all journal/checkpoint/unit telemetry handles up front
  /// (counters exist at zero even when an event never fires).
  CampaignProgress(CampaignTask& task, util::MetricsRegistry* metrics);

  /// Phase 1, before task.prepare(): on resume, validates checkpoint +
  /// journal identity (throws ConfigError on fingerprint mismatch),
  /// repairs a torn journal tail and replays intact unit frames; on a
  /// fresh checkpointing run, creates the checkpoint directory.
  void recover();

  /// Phase 2, after task.prepare(): opens the journal writer and — on a
  /// fresh run — publishes the initial checkpoint so a crash before the
  /// first periodic write still leaves a resumable directory.
  void open(const WaterMarks& marks);

  bool checkpointing() const { return checkpointing_; }
  std::size_t units() const { return units_; }
  std::size_t done() const { return done_; }
  bool all_done() const { return done_ == units_; }
  bool unit_completed(std::size_t t) const { return completed_[t] != 0; }
  const std::string& payload(std::size_t t) const { return payloads_[t]; }

  /// Records a computed payload without journaling it yet (an ascending
  /// cursor journals it).  Duplicate completions — possible under fleet
  /// lease re-issue — are dropped, first-complete wins, after asserting
  /// both payloads are byte-identical; returns false for a duplicate.
  bool store(std::size_t unit, std::string payload);

  /// Advances a cursor over completed units in [cursor, end): journals
  /// each stored-but-unjournaled payload, counts it done and writes a
  /// checkpoint every config.checkpoint_every completions — exactly as
  /// unit-at-a-time execution would, no matter what order the payloads
  /// were stored in.  Returns the new cursor (first incomplete unit).
  std::size_t absorb_ascending(std::size_t cursor, std::size_t end,
                               const WaterMarks& marks);

  /// Journals/counts exactly the given completed units (must be
  /// ascending).  The steered executor's barrier: a round's payloads
  /// are absorbed in plan order, so journal bytes do not depend on
  /// which worker computed what.  Units that were never stored pending
  /// (journal-replayed on resume) are skipped, like absorb_ascending.
  void absorb_units(const std::vector<std::size_t>& units,
                    const WaterMarks& marks);

  /// Journals every computed-but-still-pending payload, out of
  /// ascending order (scan_journal accepts any frame order on resume).
  /// Drain path: a preempted strided pack loses nothing already
  /// computed, even if a second signal kills the process right after.
  void flush_pending();

  void write_checkpoint(const WaterMarks& marks);

  /// Final checkpoint + journal close (no-op without checkpointing).
  void close(const WaterMarks& marks);

  /// Ascending absorb_unit over every COMPLETED payload, then
  /// task.finalize().  A budgeted campaign legitimately completes a
  /// subset; absorbing the never-executed units' empty payloads would
  /// corrupt the outputs (and used to, before steering existed to
  /// finish partial).
  void merge();

 private:
  /// Journals + counts one pending unit (checkpoint cadence included).
  void absorb_one(std::size_t t, const WaterMarks& marks);

  CampaignTask& task_;
  util::MetricsRegistry* metrics_;
  std::size_t units_ = 0;
  std::uint64_t fingerprint_ = 0;
  bool checkpointing_ = false;
  std::vector<std::string> payloads_;
  std::vector<char> completed_;
  /// completed but not yet journaled/counted (deferred absorb, §12)
  std::vector<char> pending_;
  std::size_t done_ = 0;
  std::size_t done_since_checkpoint_ = 0;
  std::unique_ptr<io::JournalWriter> journal_;

  util::Counter* units_total_ = nullptr;
  util::Counter* units_computed_ = nullptr;
  util::Counter* units_replayed_ = nullptr;
  util::Counter* journal_frames_ = nullptr;
  util::Counter* journal_payload_bytes_ = nullptr;
  util::Counter* checkpoint_writes_ = nullptr;
  util::Histogram* journal_append_ms_ = nullptr;
  util::Histogram* checkpoint_write_ms_ = nullptr;
};

/// Runs a CampaignTask end to end: prepare -> sharded unit execution
/// (journaled when checkpointing is configured) -> ordered merge ->
/// finalize.  One executor instance runs one campaign.
///
/// Unit packing (DESIGN.md §12): within each shard the executor hands
/// the runner up to min(config.unit_batch, task.max_unit_pack())
/// incomplete units per run_unit_pack call, spaced at the task's
/// unit_pack_stride() — the classification harness strides by
/// dataset_size so a pack re-runs the SAME image under different fault
/// groups and shares one fault-free pass across the pack.  Payloads
/// come back in pack order; each shard then journals / counts them
/// from an ascending cursor (out-of-order pack-mates wait as pending),
/// so journal frames, counters and checkpoint cadence match
/// unit-at-a-time execution and outputs stay byte-identical for every
/// --unit-batch / --jobs combination.
class BatchedCampaignExecutor {
 public:
  /// `metrics` (optional) receives campaign telemetry: unit counters
  /// (units.total/computed/replayed — commutative, so identical for any
  /// --jobs), the campaign.unit_ms latency histogram, journal/checkpoint
  /// write latency + bytes and per-worker units/sec gauges.
  explicit BatchedCampaignExecutor(CampaignTask& task,
                                   util::MetricsRegistry* metrics = nullptr);

  /// Paths used inside a checkpoint directory.
  static std::string journal_path(const std::string& checkpoint_dir);
  static std::string checkpoint_path(const std::string& checkpoint_dir);

  /// Executes the campaign.  Throws CampaignInterrupted on graceful
  /// drain, ConfigError when a resume's fingerprints do not match.
  /// With config.steering.enabled() the round-based steered path runs
  /// instead of the exhaustive sweep (DESIGN.md §16).
  void execute();

 private:
  /// Budgeted / adaptively-steered execution: a single planning loop
  /// (SteeringPolicy) plans rounds of units; each round is sharded
  /// across the worker threads, absorbed at the round barrier in plan
  /// order, and its outcomes steer the next round.  Emits
  /// vulnerability_map.json when configured.
  void execute_steered();

  CampaignTask& task_;
  util::MetricsRegistry* metrics_;
};

/// The packed executor subsumed the original unit-at-a-time executor
/// (unit_batch == 1 reproduces it exactly); the old name remains the
/// conventional spelling at call sites.
using CampaignExecutor = BatchedCampaignExecutor;

}  // namespace alfi::core
