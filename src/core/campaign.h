// CampaignRunner — deterministic sharded execution of fault-injection
// campaigns across worker threads.
//
// Per-fault-config independence makes FI campaigns embarrassingly
// parallel (the pre-generated fault matrix fixes every fault location
// before the first inference), so a campaign of N work units can be
// split into contiguous shards, each executed by one worker against its
// own deep-cloned model replica (nn::Module::clone()), its own Injector
// and its own child RNG stream, and merged back in shard order.
//
// Determinism guarantee: the shard boundaries depend only on (count,
// jobs), every work unit carries its global index, and the merge
// concatenates shard outputs in ascending shard order — so the merged
// result of `--jobs N` is byte-identical to the serial `--jobs 1` run.
// The per-shard RNG is derived from (seed, shard.begin) alone, keeping
// any future stochastic per-shard behavior reproducible as well.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace alfi::core {

/// One contiguous range of campaign work units, [begin, end), plus the
/// worker's independent child RNG stream.
struct CampaignShard {
  std::size_t index = 0;  ///< merge position (ascending = serial order)
  std::size_t begin = 0;  ///< first global work-unit index (inclusive)
  std::size_t end = 0;    ///< one past the last work-unit index

  /// Child stream seeded from (campaign seed, begin): identical for the
  /// same range regardless of how many workers run the campaign.
  Rng rng;

  std::size_t size() const { return end - begin; }
};

class CampaignRunner {
 public:
  /// `jobs` worker threads; 0 selects default_job_count().
  explicit CampaignRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Hardware concurrency, with a floor of 1 when it is unknown.
  static std::size_t default_job_count();

  /// Partitions [0, count) into at most `jobs` contiguous shards of
  /// near-equal size (the first count % jobs shards get one extra unit).
  /// Every unit is covered exactly once; shards come back in merge
  /// order.  `seed` feeds each shard's child RNG stream.
  static std::vector<CampaignShard> shard_columns(std::size_t count,
                                                  std::size_t jobs,
                                                  std::uint64_t seed);

  /// Executes `work` once per shard: inline on the calling thread when
  /// there is a single shard, otherwise one std::thread per shard.  If
  /// any worker throws, the first exception (in shard order) is
  /// rethrown on the calling thread after all workers joined.
  void run_shards(const std::vector<CampaignShard>& shards,
                  const std::function<void(const CampaignShard&)>& work) const;

 private:
  std::size_t jobs_;
};

}  // namespace alfi::core
