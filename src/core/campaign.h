// CampaignRunner — deterministic sharded execution of fault-injection
// campaigns across worker threads — and CampaignExecutor, the
// crash-safe driver that runs any CampaignTask with journaling,
// checkpoint/resume and graceful drain.
//
// Per-fault-config independence makes FI campaigns embarrassingly
// parallel (the pre-generated fault matrix fixes every fault location
// before the first inference), so a campaign of N work units can be
// split into contiguous shards, each executed by one worker against its
// own deep-cloned model replica (nn::Module::clone()), its own Injector
// and its own child RNG stream, and merged back in shard order.
//
// Determinism guarantee: the shard boundaries depend only on (count,
// jobs), every work unit carries its global index, and the merge
// concatenates shard outputs in ascending shard order — so the merged
// result of `--jobs N` is byte-identical to the serial `--jobs 1` run.
// The per-shard RNG is derived from (seed, shard.begin) alone, keeping
// any future stochastic per-shard behavior reproducible as well.
//
// Crash safety (DESIGN.md §8): with a checkpoint directory configured,
// every completed unit's serialized result is appended to a
// CRC32-framed journal and a checkpoint (atomic temp+rename) records
// the campaign fingerprint and per-shard high-water marks.  A resumed
// run validates the fingerprint, truncates any torn journal tail,
// replays intact units from the journal and computes only the rest —
// the merged outputs are byte-identical to an uninterrupted run for any
// job count, because final outputs are only ever produced from unit
// payloads absorbed in ascending unit order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign_task.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace alfi::core {

/// One contiguous range of campaign work units, [begin, end), plus the
/// worker's independent child RNG stream.
struct CampaignShard {
  std::size_t index = 0;  ///< merge position (ascending = serial order)
  std::size_t begin = 0;  ///< first global work-unit index (inclusive)
  std::size_t end = 0;    ///< one past the last work-unit index

  /// Child stream seeded from (campaign seed, begin): identical for the
  /// same range regardless of how many workers run the campaign.
  Rng rng;

  std::size_t size() const { return end - begin; }
};

class CampaignRunner {
 public:
  /// `jobs` worker threads; 0 selects default_job_count().
  explicit CampaignRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Hardware concurrency, with a floor of 1 when it is unknown.
  static std::size_t default_job_count();

  /// Partitions [0, count) into at most `jobs` contiguous shards of
  /// near-equal size (the first count % jobs shards get one extra unit).
  /// Every unit is covered exactly once; shards come back in merge
  /// order.  `seed` feeds each shard's child RNG stream.
  static std::vector<CampaignShard> shard_columns(std::size_t count,
                                                  std::size_t jobs,
                                                  std::uint64_t seed);

  /// Executes `work` once per shard: inline on the calling thread when
  /// there is a single shard, otherwise one std::thread per shard.  If
  /// any worker throws, the first exception (in shard order) is
  /// rethrown on the calling thread after all workers joined.
  void run_shards(const std::vector<CampaignShard>& shards,
                  const std::function<void(const CampaignShard&)>& work) const;

 private:
  std::size_t jobs_;
};

/// Thrown when a campaign drains to its checkpoint instead of
/// finishing: a drain request (SIGINT/SIGTERM or the config's interrupt
/// callback) stopped workers between units.  The journal and checkpoint
/// are durable at throw time; re-running with resume=true completes the
/// campaign with byte-identical outputs.
class CampaignInterrupted : public Error {
 public:
  CampaignInterrupted(std::size_t completed, std::size_t total,
                      std::string checkpoint_dir);

  std::size_t completed_units() const { return completed_; }
  std::size_t total_units() const { return total_; }
  const std::string& checkpoint_dir() const { return checkpoint_dir_; }

 private:
  std::size_t completed_;
  std::size_t total_;
  std::string checkpoint_dir_;
};

/// Per-shard progress recorded in the checkpoint file: the shard's
/// range at checkpoint time plus its high-water mark (first unit not
/// yet completed).  On resume the executor re-derives shards for the
/// *current* job count and re-arms each shard's RNG fork at its first
/// incomplete unit; the persisted marks are validation/telemetry.
struct ShardWaterMark {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t high_water = 0;
};

/// Checkpoint file contents (checkpoint.bin, atomic temp+rename).
struct CampaignCheckpoint {
  std::uint64_t fingerprint = 0;
  std::string task_kind;
  std::uint64_t unit_count = 0;
  std::uint64_t completed_units = 0;
  std::uint64_t rnd_seed = 0;
  std::uint64_t journal_valid_bytes = 0;
  std::vector<ShardWaterMark> shards;

  void save(const std::string& path) const;
  static CampaignCheckpoint load(const std::string& path);
};

/// Runs a CampaignTask end to end: prepare -> sharded unit execution
/// (journaled when checkpointing is configured) -> ordered merge ->
/// finalize.  One executor instance runs one campaign.
///
/// Unit packing (DESIGN.md §12): within each shard the executor hands
/// the runner up to min(config.unit_batch, task.max_unit_pack())
/// incomplete units per run_unit_pack call, spaced at the task's
/// unit_pack_stride() — the classification harness strides by
/// dataset_size so a pack re-runs the SAME image under different fault
/// groups and shares one fault-free pass across the pack.  Payloads
/// come back in pack order; each shard then journals / counts them
/// from an ascending cursor (out-of-order pack-mates wait as pending),
/// so journal frames, counters and checkpoint cadence match
/// unit-at-a-time execution and outputs stay byte-identical for every
/// --unit-batch / --jobs combination.
class BatchedCampaignExecutor {
 public:
  /// `metrics` (optional) receives campaign telemetry: unit counters
  /// (units.total/computed/replayed — commutative, so identical for any
  /// --jobs), the campaign.unit_ms latency histogram, journal/checkpoint
  /// write latency + bytes and per-worker units/sec gauges.
  explicit BatchedCampaignExecutor(CampaignTask& task,
                                   util::MetricsRegistry* metrics = nullptr);

  /// Paths used inside a checkpoint directory.
  static std::string journal_path(const std::string& checkpoint_dir);
  static std::string checkpoint_path(const std::string& checkpoint_dir);

  /// Executes the campaign.  Throws CampaignInterrupted on graceful
  /// drain, ConfigError when a resume's fingerprints do not match.
  void execute();

 private:
  CampaignTask& task_;
  util::MetricsRegistry* metrics_;
};

/// The packed executor subsumed the original unit-at-a-time executor
/// (unit_batch == 1 reproduces it exactly); the old name remains the
/// conventional spelling at call sites.
using CampaignExecutor = BatchedCampaignExecutor;

}  // namespace alfi::core
