#include "core/fault_generator.h"

namespace alfi::core {

std::vector<std::size_t> eligible_layers(const Scenario& scenario,
                                         const ModelProfile& profile) {
  std::vector<std::size_t> eligible;
  for (const LayerInfo& info : profile.layers()) {
    if (!scenario.allows_layer_kind(info.kind)) continue;
    // Weight-less sites (attention probabilities, the residual stream)
    // advertise neuron injection only.
    if (scenario.target == FaultTarget::kWeights && !info.has_weight()) continue;
    if (scenario.layer_range &&
        (info.index < scenario.layer_range->first ||
         info.index > scenario.layer_range->second)) {
      continue;
    }
    eligible.push_back(info.index);
  }
  if (eligible.empty()) {
    throw ConfigError(
        "scenario layer restrictions exclude every injectable layer");
  }
  return eligible;
}

namespace {

void fill_value(const Scenario& scenario, Fault& fault, Rng& rng) {
  fault.value_type = scenario.value_type;
  if (scenario.value_type == ValueType::kRandomValue) {
    fault.number_value = static_cast<float>(
        rng.uniform(scenario.rnd_value_min, scenario.rnd_value_max));
  } else {
    fault.bit_pos = static_cast<int>(
        rng.uniform_int(scenario.rnd_bit_range_lo, scenario.rnd_bit_range_hi));
  }
}

void fill_neuron_location(const Scenario& scenario, const LayerInfo& layer,
                          Fault& fault, Rng& rng) {
  const Shape& out = layer.output_shape;
  const std::size_t flat = static_cast<std::size_t>(rng.next_below(out.numel()));
  const std::vector<std::size_t> index = out.unravel(flat);
  switch (out.rank()) {
    case 1:
      fault.width = static_cast<std::int64_t>(index[0]);
      break;
    case 2:
      fault.channel_out = static_cast<std::int64_t>(index[0]);
      fault.width = static_cast<std::int64_t>(index[1]);
      break;
    case 3:
      fault.channel_out = static_cast<std::int64_t>(index[0]);
      fault.height = static_cast<std::int64_t>(index[1]);
      fault.width = static_cast<std::int64_t>(index[2]);
      break;
    case 4:
      fault.channel_out = static_cast<std::int64_t>(index[0]);
      fault.depth = static_cast<std::int64_t>(index[1]);
      fault.height = static_cast<std::int64_t>(index[2]);
      fault.width = static_cast<std::int64_t>(index[3]);
      break;
    default:
      throw Error("unsupported output rank for neuron fault");
  }
  // Batch slot (Table I row 1).  per_image: the fault targets the image
  // currently being processed (slot 0 of the armed window).  per_batch:
  // a random slot.  per_epoch: -1 = every sample, modelling a fault
  // that persists across the whole epoch.
  switch (scenario.inj_policy) {
    case InjectionPolicy::kPerImage:
      fault.batch = 0;
      break;
    case InjectionPolicy::kPerBatch:
      // Drawn against the configured batch_size so the matrix is
      // seed-stable regardless of dataset length.  A window shorter
      // than batch_size (the final batch of a non-divisible dataset)
      // does NOT re-draw: the harnesses remap the armed copy onto the
      // actual occupancy (slot % occupancy — next_for_window(), the
      // objdet unit addressing), so the fault always lands on a scored
      // image instead of being silently skipped.
      fault.batch =
          static_cast<std::int64_t>(rng.next_below(scenario.batch_size));
      break;
    case InjectionPolicy::kPerEpoch:
      fault.batch = -1;
      break;
  }
}

void fill_weight_location(const LayerInfo& layer, Fault& fault, Rng& rng) {
  const Shape& w = layer.weight_shape;
  const std::size_t flat = static_cast<std::size_t>(rng.next_below(w.numel()));
  const std::vector<std::size_t> index = w.unravel(flat);
  switch (w.rank()) {
    case 1:  // layernorm gain [F]
      fault.width = static_cast<std::int64_t>(index[0]);
      break;
    case 2:  // linear [OUT, IN]; embedding [V, E]
      fault.channel_out = static_cast<std::int64_t>(index[0]);
      fault.channel_in = static_cast<std::int64_t>(index[1]);
      break;
    case 4:  // conv2d [OC, IC, KH, KW]
      fault.channel_out = static_cast<std::int64_t>(index[0]);
      fault.channel_in = static_cast<std::int64_t>(index[1]);
      fault.height = static_cast<std::int64_t>(index[2]);
      fault.width = static_cast<std::int64_t>(index[3]);
      break;
    case 5:  // conv3d [OC, IC, KD, KH, KW]
      fault.channel_out = static_cast<std::int64_t>(index[0]);
      fault.channel_in = static_cast<std::int64_t>(index[1]);
      fault.depth = static_cast<std::int64_t>(index[2]);
      fault.height = static_cast<std::int64_t>(index[3]);
      fault.width = static_cast<std::int64_t>(index[4]);
      break;
    default:
      throw Error("unsupported weight rank for weight fault");
  }
}

}  // namespace

Fault generate_fault_in_layer(const Scenario& scenario, const LayerInfo& layer,
                              Rng& rng) {
  Fault fault;
  fault.target = scenario.target;
  fault.layer = static_cast<std::int64_t>(layer.index);
  if (scenario.target == FaultTarget::kNeurons) {
    fill_neuron_location(scenario, layer, fault, rng);
  } else {
    fill_weight_location(layer, fault, rng);
  }
  fill_value(scenario, fault, rng);
  return fault;
}

Fault generate_fault(const Scenario& scenario, const ModelProfile& profile,
                     const std::vector<std::size_t>& eligible,
                     const std::vector<double>& layer_weights, Rng& rng) {
  ALFI_CHECK(!eligible.empty(), "no eligible layers");
  std::size_t pick;
  if (scenario.weighted_layer_selection) {
    ALFI_CHECK(layer_weights.size() == eligible.size(),
               "layer weight vector size mismatch");
    pick = rng.weighted_index(layer_weights);
  } else {
    pick = static_cast<std::size_t>(rng.next_below(eligible.size()));
  }
  return generate_fault_in_layer(scenario, profile.layer(eligible[pick]), rng);
}

FaultMatrix generate_fault_matrix(const Scenario& scenario,
                                  const ModelProfile& profile, Rng& rng) {
  scenario.validate();
  const std::vector<std::size_t> eligible = eligible_layers(scenario, profile);
  const std::vector<double> weights = profile.size_weights(
      eligible, scenario.target == FaultTarget::kWeights);

  FaultMatrix matrix;
  const std::size_t n = scenario.total_faults();
  for (std::size_t i = 0; i < n; ++i) {
    matrix.push_back(generate_fault(scenario, profile, eligible, weights, rng));
  }
  return matrix;
}

}  // namespace alfi::core
