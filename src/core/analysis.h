// Post-campaign result analysis (paper §V.F.1).
//
// "This raw basic information is further processed to quantify the
// vulnerability. ... Using the first set of outputs binary files,
// bit-wise and layer-wise SDE information was easily extracted."
//
// These helpers consume the artifacts a campaign writes — the per-image
// results CSV and the binary injection trace — and aggregate them into
// layer-wise / bit-wise vulnerability tables, flip-direction statistics
// and misclassification matrices, without re-running any inference.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "io/csv.h"

namespace alfi::core {

/// Aggregated verdicts for one grouping key (a layer or a bit position).
/// Skipped injections (a drawn fault that never landed, reported by the
/// CSV's optional "applied" column) are counted separately and excluded
/// from the rate denominators: a skipped unit carries no vulnerability
/// evidence, so dividing by it would dilute the rates toward zero.
struct GroupStats {
  std::size_t total = 0;    ///< drawn faults, including skipped ones
  std::size_t skipped = 0;  ///< drawn but never applied (no injection record)
  std::size_t sde = 0;
  std::size_t due = 0;

  /// Faults that actually landed — the rate denominator.
  std::size_t applied() const { return total - skipped; }

  double sde_rate() const {
    const std::size_t n = applied();
    return n == 0 ? 0.0 : static_cast<double>(sde) / static_cast<double>(n);
  }
  double due_rate() const {
    const std::size_t n = applied();
    return n == 0 ? 0.0 : static_cast<double>(due) / static_cast<double>(n);
  }
};

/// Everything extractable from one classification results CSV.
struct CampaignAnalysis {
  std::size_t total_images = 0;
  /// Images whose drawn fault group never applied a single injection
  /// ("applied" column all-zero).  Excluded from layer/bit rates; a CSV
  /// without the column reports 0 (every fault assumed applied).
  std::size_t skipped_images = 0;
  std::size_t sde_images = 0;
  std::size_t due_images = 0;

  /// Keyed by injectable-layer index ("layer-wise SDE information").
  std::map<std::int64_t, GroupStats> by_layer;
  /// Keyed by flipped bit position ("bit-wise SDE information").
  std::map<int, GroupStats> by_bit;
  /// (fault-free top-1 -> corrupted top-1) counts over SDE images.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> misclassification;
};

/// Parses the compact fault field of one CSV row
/// ("layer:c_out:c_in:d:h:w:bit" entries joined by ';').
struct CsvFaultRef {
  std::int64_t layer = -1;
  int bit_pos = -1;
};
std::vector<CsvFaultRef> parse_fault_field(const std::string& field);

/// Analyzes a results CSV produced by TestErrorModelsImgClass.
CampaignAnalysis analyze_results_csv(const std::string& path);
CampaignAnalysis analyze_results_table(const io::CsvTable& table);

/// Statistics over a binary injection trace (the "second binary file"
/// of §IV.B: before/after values and flip directions).
struct TraceStats {
  std::size_t records = 0;
  std::size_t flips_zero_to_one = 0;
  std::size_t flips_one_to_zero = 0;
  std::size_t produced_nonfinite = 0;  // corrupted value is NaN/Inf
  double mean_abs_original = 0.0;
  double mean_abs_corrupted = 0.0;     // over finite corrupted values
  /// Corruption magnification: mean log10(|corrupted/original|) over
  /// records where both values are finite and non-zero (0 = unchanged
  /// magnitude; exponent-bit flips push this to tens of decades).
  double mean_log10_magnification = 0.0;
};
TraceStats analyze_trace(const std::vector<InjectionRecord>& records);
TraceStats analyze_trace_file(const std::string& path);

/// Renders an analysis as a human-readable report (used by the CLI and
/// the analysis example).
std::string format_analysis(const CampaignAnalysis& analysis);
std::string format_trace_stats(const TraceStats& stats);

}  // namespace alfi::core
