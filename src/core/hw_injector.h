// Hardware-level (MAC-unit) fault injection — the replaceable injector
// of paper §V.G.
//
// "First tests have been performed to integrate a fault injection
//  method that relies on low-level ML library primitives to provide a
//  more realistic fault behaviour based on faults in specific HW units
//  that perform the MAC operations in Convolutional Neural Networks"
//  (citing Omland et al., "API-based Hardware Fault Simulation for DNN
//  Accelerators").
//
// This injector models a faulty multiply-accumulate unit in a weight-
// stationary accelerator lane: one output channel of one conv2d layer
// is computed by one MAC lane, and that lane's accumulator register has
// a defective bit.  Unlike the application-level Injector (one corrupted
// value), a faulty MAC corrupts *every* partial sum that flows through
// the lane — the whole output channel, every spatial position, every
// image.
//
// Implementation: a forward hook recomputes the affected channel from
// the layer's (hook-provided) input with a bit-faulty accumulation loop
// and overwrites it in the output tensor, so the mechanism composes with
// everything else built on hooks (monitors, mitigations, the campaign
// harnesses).
#pragma once

#include <vector>

#include "core/model_profile.h"
#include "core/scenario.h"

namespace alfi::core {

enum class MacFaultKind {
  /// The accumulator bit is stuck at 1: forced after every accumulation.
  kStuckAt1,
  /// The accumulator bit is stuck at 0.
  kStuckAt0,
  /// The bit flips once, after the final accumulation (mildest model —
  /// equivalent to a neuron fault applied to the whole channel).
  kFlipFinal,
};

const char* to_string(MacFaultKind kind);

/// One faulty MAC lane.
struct MacFault {
  std::size_t layer = 0;           // injectable-layer index (must be conv2d)
  std::size_t output_channel = 0;  // the lane's channel
  int bit_pos = 30;                // defective accumulator bit
  MacFaultKind kind = MacFaultKind::kStuckAt1;
};

class HwMacInjector {
 public:
  /// `profile` must describe `model`; only conv2d layers can host MAC
  /// faults (the accelerator-lane model is convolution-specific).
  HwMacInjector(nn::Module& model, const ModelProfile& profile);
  ~HwMacInjector();
  HwMacInjector(const HwMacInjector&) = delete;
  HwMacInjector& operator=(const HwMacInjector&) = delete;

  /// Arms a faulty lane; throws if the layer is not conv2d or the
  /// channel is out of range.  Multiple lanes may be armed at once.
  void arm(const MacFault& fault);

  void disarm();

  std::size_t armed_count() const;

  /// Total channel recomputations performed (for tests/benches).
  std::size_t applications() const { return applications_; }

 private:
  void apply(std::size_t layer_index, const Tensor& input, Tensor& output);

  nn::Module& model_;
  const ModelProfile& profile_;
  std::vector<nn::HookHandle> hook_handles_;
  std::vector<std::vector<MacFault>> faults_by_layer_;
  std::size_t applications_ = 0;
};

/// Reference semantics of one faulty accumulation chain: accumulates
/// `products` with the defective bit applied per `kind`; exposed for
/// tests.
float faulty_accumulate(const std::vector<float>& products, float bias, int bit_pos,
                        MacFaultKind kind);

}  // namespace alfi::core
