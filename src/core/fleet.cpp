#include "core/fleet.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/steering.h"
#include "io/socket.h"
#include "io/vulnerability_map.h"
#include "util/drain.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace alfi::core {

namespace {

using io::ByteReader;
using io::ByteWriter;

std::string encode_kind(FleetMsgKind kind) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(kind));
  return w.take();
}

std::string encode_refuse(const std::string& reason) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(FleetMsgKind::kRefuse));
  w.write_string(reason);
  return w.take();
}

std::string encode_welcome(std::uint64_t worker_id, double heartbeat_ms) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(FleetMsgKind::kWelcome));
  w.write_u64(worker_id);
  w.write_f64(heartbeat_ms);
  return w.take();
}

std::string encode_lease(FleetMsgKind kind, const LeaseRange& range) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_u64(range.begin);
  w.write_u64(range.end);
  return w.take();
}

/// A shipped unit uses the journal's own kUnit payload, unchanged —
/// the coordinator can hand it straight to the journal writer.
std::string encode_unit(std::size_t unit, std::string_view payload) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(io::JournalFrameKind::kUnit));
  w.write_u64(unit);
  w.write_bytes(payload);
  return w.take();
}

/// Blocks until one complete frame arrives; throws IoError on EOF.
std::string recv_frame(io::Socket& sock, io::FrameDecoder& decoder) {
  std::string payload;
  while (!decoder.next(&payload)) {
    char buf[4096];
    const std::size_t n = sock.recv_some(buf, sizeof buf);
    if (n == 0) throw IoError("fleet coordinator closed the connection");
    decoder.feed(buf, n);
  }
  return payload;
}

}  // namespace

std::string encode_fleet_hello(std::uint64_t fingerprint, std::uint64_t unit_count,
                               const std::string& task_kind) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(FleetMsgKind::kHello));
  w.write_u32(kFleetProtocolVersion);
  w.write_u64(fingerprint);
  w.write_u64(unit_count);
  w.write_string(task_kind);
  return w.take();
}

std::pair<std::string, std::uint16_t> parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw ConfigError("expected host:port, got \"" + spec + "\"");
  }
  const std::string host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    throw ConfigError("invalid port in \"" + spec + "\"");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

// ---- lease table ------------------------------------------------------------

LeaseTable::LeaseTable(std::size_t units, std::size_t lease_units,
                       std::uint64_t seed)
    : lease_units_(std::max<std::size_t>(1, lease_units)) {
  if (units == 0) return;
  // Reuse the executor's deterministic contiguous sharding so lease
  // geometry is a pure function of (units, lease_units), independent
  // of worker count or arrival order.
  const std::size_t ranges = (units + lease_units_ - 1) / lease_units_;
  for (const CampaignShard& shard :
       CampaignRunner::shard_columns(units, ranges, seed)) {
    queue_.push_back({shard.begin, shard.end});
  }
}

void LeaseTable::seed(const std::vector<LeaseRange>& ranges) {
  for (const LeaseRange& range : ranges) {
    if (!range.empty()) queue_.push_back(range);
  }
}

LeaseRange LeaseTable::grant(const CompletedFn& completed) {
  while (!queue_.empty()) {
    LeaseRange range = queue_.front();
    queue_.pop_front();
    // Trim leading completed units (a recycled lease was partially
    // shipped before its worker died; a resumed campaign replayed some).
    while (range.begin < range.end && completed(range.begin)) ++range.begin;
    if (range.empty()) continue;
    // Grant the maximal contiguous incomplete run, capped at
    // lease_units; split the remainder (if any) back to the front so
    // the global absorb cursor chases the lowest incomplete units.
    std::size_t end = range.begin;
    while (end < range.end && !completed(end) &&
           end - range.begin < lease_units_) {
      ++end;
    }
    if (end < range.end) queue_.push_front({end, range.end});
    return {range.begin, end};
  }
  return {};
}

void LeaseTable::recycle(LeaseRange range) {
  if (!range.empty()) queue_.push_front(range);
}

// ---- worker -----------------------------------------------------------------

FleetWorker::FleetWorker(CampaignTask& task, std::string host, std::uint16_t port,
                         bool prepared)
    : task_(task), host_(std::move(host)), port_(port), prepared_(prepared) {}

FleetWorkerStats FleetWorker::run() {
  const CampaignConfigBase& config = task_.base_config();
  const std::function<bool()> interrupted =
      config.interrupt ? config.interrupt : std::function<bool()>(&drain_requested);
  if (!prepared_) task_.prepare();

  io::Socket sock = io::connect_tcp(host_, port_);
  io::FrameDecoder decoder;
  io::send_frame(sock, encode_fleet_hello(task_.fingerprint(), task_.unit_count(),
                                          task_.task_kind()));
  double heartbeat_ms = config.fleet.heartbeat_ms;
  {
    const std::string reply = recv_frame(sock, decoder);
    ByteReader r(reply);
    const auto kind = static_cast<FleetMsgKind>(r.read_u8());
    if (kind == FleetMsgKind::kRefuse) {
      throw ConfigError("fleet coordinator refused this worker: " +
                        r.read_string());
    }
    if (kind != FleetMsgKind::kWelcome) {
      throw ParseError("unexpected handshake reply from fleet coordinator");
    }
    r.read_u64();                // worker id (informational)
    heartbeat_ms = r.read_f64();  // the coordinator's cadence wins
  }

  // Same pack/stride clamping as the executor, so a worker computes a
  // unit exactly the way a local run would.
  const std::size_t pack =
      std::max<std::size_t>(1, std::min(config.unit_batch == 0
                                            ? std::size_t{1}
                                            : config.unit_batch,
                                        task_.max_unit_pack()));
  const std::size_t stride = std::max<std::size_t>(1, task_.unit_pack_stride());

  std::unique_ptr<CampaignUnitRunner> runner;  // lazy: a refused or
  // no-work worker never pays for runner setup.
  IntervalTimer heartbeat(heartbeat_ms);
  FleetWorkerStats stats;
  std::vector<std::size_t> pack_units;
  std::vector<char> served;  // per-lease pack-mate marks

  while (true) {
    if (interrupted()) {
      stats.drained = true;
      break;
    }
    // Between leases the coordinator owes this worker nothing, so a
    // connection dropped here means it finished: the final absorb can
    // race our next request past the best-effort kNoWork.  Mid-lease
    // drops (below) still propagate — there the campaign lost work.
    std::string reply;
    try {
      io::send_frame(sock, encode_kind(FleetMsgKind::kLeaseRequest));
      reply = recv_frame(sock, decoder);
    } catch (const IoError&) {
      break;
    }
    ByteReader r(reply);
    const auto kind = static_cast<FleetMsgKind>(r.read_u8());
    if (kind == FleetMsgKind::kNoWork) break;
    if (kind != FleetMsgKind::kLeaseGrant) {
      throw ParseError("unexpected frame while waiting for a lease grant");
    }
    LeaseRange lease;
    lease.begin = static_cast<std::size_t>(r.read_u64());
    lease.end = static_cast<std::size_t>(r.read_u64());

    if (!runner) runner = task_.make_unit_runner(/*shared_model=*/true);
    served.assign(lease.size(), 0);
    // Drain-to-lease-boundary: a drain request arriving anywhere in
    // here (even mid-pack) finishes the WHOLE lease first — every
    // computed payload ships, the coordinator re-leases nothing.
    for (std::size_t t = lease.begin; t < lease.end; ++t) {
      if (served[t - lease.begin]) continue;  // pack-mate already shipped
      pack_units.clear();
      for (std::size_t u = t; pack_units.size() < pack && u < lease.end &&
                              !served[u - lease.begin];
           u += stride) {
        pack_units.push_back(u);
      }
      std::vector<std::string> batch = runner->run_unit_pack(pack_units);
      ALFI_CHECK(batch.size() == pack_units.size(),
                 "unit runner returned a wrong-sized payload batch");
      for (std::size_t i = 0; i < batch.size(); ++i) {
        io::send_frame(sock, encode_unit(pack_units[i], batch[i]));
        served[pack_units[i] - lease.begin] = 1;
        ++stats.units_computed;
      }
      if (heartbeat.due()) {
        io::send_frame(sock, encode_kind(FleetMsgKind::kHeartbeat));
      }
    }
    io::send_frame(sock, encode_lease(FleetMsgKind::kLeaseDone, lease));
    ++stats.leases_served;
  }

  try {
    io::send_frame(sock, encode_kind(FleetMsgKind::kBye));
  } catch (const IoError&) {
    // Coordinator may already have closed after kNoWork — fine.
  }
  return stats;
}

// ---- coordinator ------------------------------------------------------------

namespace {

/// Per-connection coordinator state.
struct Conn {
  explicit Conn(io::Socket s) : sock(std::move(s)) {}
  io::Socket sock;
  io::FrameDecoder decoder;
  bool active = false;      ///< handshake accepted
  bool closed = false;      ///< remove after this loop iteration
  bool graceful = false;    ///< closed via kBye, not death
  bool want_lease = false;  ///< kLeaseRequest pending a grant
  bool has_lease = false;
  LeaseRange lease;
  Stopwatch last_seen;
};

}  // namespace

FleetCoordinator::FleetCoordinator(CampaignTask& task,
                                   util::MetricsRegistry* metrics)
    : task_(task), metrics_(metrics) {}

void FleetCoordinator::execute() {
  const CampaignConfigBase& config = task_.base_config();
  const FleetOptions& fleet = config.fleet;
  const std::size_t units = task_.unit_count();
  if (config.checkpoint_dir.empty()) {
    throw ConfigError(
        "fleet coordinator mode requires --checkpoint-dir: shipped unit "
        "frames are merged through the journal");
  }
  const std::function<bool()> interrupted =
      config.interrupt ? config.interrupt : std::function<bool()>(&drain_requested);

  // Steered mode (DESIGN.md §16): the coordinator runs the planning
  // loop, leasing exactly the planned rounds; the worker side is the
  // ordinary lease protocol, completely unchanged.
  const bool steered = config.steering.enabled();
  std::vector<SteeringCellKey> cells;
  if (steered) {
    cells = task_.steering_cells();
    if (cells.empty()) {
      throw ConfigError("workload '" + task_.task_kind() +
                        "' does not support campaign steering "
                        "(--budget / --steer / --vuln-map)");
    }
    ALFI_CHECK(cells.size() == units,
               "steering_cells must describe every work unit");
  }

  util::Counter* workers_joined = nullptr;
  util::Counter* workers_refused = nullptr;
  util::Counter* worker_deaths = nullptr;
  util::Counter* leases_granted = nullptr;
  util::Counter* leases_reissued = nullptr;
  util::Counter* duplicate_units = nullptr;
  if (metrics_ != nullptr) {
    workers_joined = &metrics_->counter("fleet.workers_joined");
    workers_refused = &metrics_->counter("fleet.workers_refused");
    worker_deaths = &metrics_->counter("fleet.worker_deaths");
    leases_granted = &metrics_->counter("fleet.leases_granted");
    leases_reissued = &metrics_->counter("fleet.leases_reissued");
    duplicate_units = &metrics_->counter("fleet.duplicate_units");
  }

  CampaignProgress progress(task_, metrics_);
  progress.recover();
  task_.prepare();

  // One global ascending absorb cursor: the coordinator journals unit
  // frames in strictly ascending order no matter how leases interleave,
  // so the journal is byte-identical to a checkpointed --jobs 1 run.
  std::size_t cursor = 0;
  const CampaignProgress::WaterMarks marks = [&] {
    return std::vector<ShardWaterMark>{
        {0, units, cursor}};
  };
  progress.open(marks);

  io::Listener listener(fleet.listen_port);
  ALFI_LOG(kInfo) << "fleet coordinator listening on 127.0.0.1:"
                  << listener.port() << " (" << units << " units, lease cap "
                  << fleet.lease_units << ")";
  if (fleet.on_listen) fleet.on_listen(listener.port());

  // Steered: start empty, refill with each planned round.
  LeaseTable table(steered ? 0 : units, fleet.lease_units,
                   task_.task_scenario().rnd_seed);
  const auto completed_fn = [&](std::size_t unit) {
    return progress.unit_completed(unit);
  };

  // ---- local workers: fork after prepare() so children inherit the
  // trained model and calibration — spawn cost is one fork().
  std::vector<int> child_pids;
  for (std::size_t i = 0; i < fleet.local_workers; ++i) {
    const int pid = ::fork();
    if (pid < 0) throw IoError("cannot fork local fleet worker");
    if (pid == 0) {
      // Child: become a worker against the parent's listener.  _exit()
      // (not exit()) so gtest/atexit state of the parent never runs
      // twice.
      try {
        reset_drain_request();
        FleetWorker worker(task_, "127.0.0.1", listener.port(),
                           /*prepared=*/true);
        const FleetWorkerStats stats = worker.run();
        ::_exit(stats.drained ? kDrainExitCode : 0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[alfi] fleet worker failed: %s\n", e.what());
        ::_exit(1);
      }
    }
    child_pids.push_back(pid);
    if (fleet.on_local_spawn) fleet.on_local_spawn(pid);
  }

  std::vector<std::unique_ptr<Conn>> conns;
  std::uint64_t next_worker_id = 1;

  const auto disconnect = [&](Conn& conn, bool death) {
    if (conn.closed) return;
    conn.closed = true;
    conn.graceful = !death;
    if (conn.has_lease) {
      table.recycle(conn.lease);
      conn.has_lease = false;
      if (leases_reissued != nullptr) leases_reissued->add();
      ALFI_LOG(kWarn) << "fleet: re-issuing lease [" << conn.lease.begin << ", "
                      << conn.lease.end << ") from a "
                      << (death ? "dead" : "departed") << " worker";
    }
    if (death && worker_deaths != nullptr) worker_deaths->add();
    conn.sock.close();
  };

  const auto handle_frame = [&](Conn& conn, const std::string& payload) {
    ByteReader r(payload);
    const std::uint8_t raw_kind = r.read_u8();
    if (raw_kind == static_cast<std::uint8_t>(io::JournalFrameKind::kUnit)) {
      const std::size_t unit = static_cast<std::size_t>(r.read_u64());
      // The remaining bytes are the task payload, exactly as a local
      // run would journal them.
      if (!progress.store(unit, payload.substr(1 + 8))) {
        if (duplicate_units != nullptr) duplicate_units->add();
      }
      return;
    }
    switch (static_cast<FleetMsgKind>(raw_kind)) {
      case FleetMsgKind::kHello: {
        const std::uint32_t version = r.read_u32();
        const std::uint64_t fingerprint = r.read_u64();
        const std::uint64_t unit_count = r.read_u64();
        const std::string kind = r.read_string();
        std::string refuse;
        if (version != kFleetProtocolVersion) {
          refuse = "fleet protocol version mismatch";
        } else if (kind != task_.task_kind()) {
          refuse = "task kind mismatch (worker runs " + kind + ")";
        } else if (unit_count != units) {
          refuse = "unit count mismatch";
        } else if (fingerprint != task_.fingerprint()) {
          refuse =
              "campaign fingerprint mismatch (scenario, fault matrix, seed "
              "or binary differs)";
        }
        if (!refuse.empty()) {
          ALFI_LOG(kWarn) << "fleet: refusing worker: " << refuse;
          if (workers_refused != nullptr) workers_refused->add();
          try {
            io::send_frame(conn.sock, encode_refuse(refuse));
          } catch (const IoError&) {
          }
          disconnect(conn, /*death=*/false);
          return;
        }
        conn.active = true;
        if (workers_joined != nullptr) workers_joined->add();
        io::send_frame(conn.sock,
                       encode_welcome(next_worker_id++, fleet.heartbeat_ms));
        return;
      }
      case FleetMsgKind::kLeaseRequest:
        conn.want_lease = true;
        return;
      case FleetMsgKind::kHeartbeat:
        return;  // last_seen was already reset by the read loop
      case FleetMsgKind::kLeaseDone:
        conn.has_lease = false;
        return;
      case FleetMsgKind::kBye:
        disconnect(conn, /*death=*/false);
        return;
      default:
        throw ParseError("unknown fleet message kind");
    }
  };

  // Throttled --progress line, same format as the executor's.
  const Stopwatch campaign_watch;
  double last_progress_ms = -1.0;
  const auto print_progress = [&](bool final_line) {
    if (!config.progress) return;
    const double now_ms = campaign_watch.elapsed_ms();
    if (!final_line && last_progress_ms >= 0.0 && now_ms - last_progress_ms < 200.0) {
      return;
    }
    last_progress_ms = now_ms;
    const std::size_t done = progress.done();
    const double pct = units == 0 ? 100.0 : 100.0 * static_cast<double>(done) /
                                                static_cast<double>(units);
    const double rate = now_ms <= 0.0 ? 0.0 : static_cast<double>(done) /
                                                  (now_ms / 1000.0);
    std::fprintf(stderr, "\r[alfi] %zu/%zu units (%5.1f%%) %8.1f units/s%s",
                 done, units, pct, rate, final_line ? "\n" : "");
    std::fflush(stderr);
  };

  // One poll iteration: accept joiners, ingest frames, detect dead
  // workers, reap children, grant queued leases.  Shared verbatim by
  // the exhaustive loop (which also advances the absorb cursor) and the
  // steered round loop (which absorbs only at round barriers).
  const auto pump = [&] {
    std::vector<::pollfd> fds;
    fds.reserve(1 + conns.size());
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const auto& conn : conns) fds.push_back({conn->sock.fd(), POLLIN, 0});
    const int ready = ::poll(fds.data(), static_cast<::nfds_t>(fds.size()), 20);
    if (ready < 0 && errno != EINTR) {
      throw IoError(std::string("fleet poll failed: ") + std::strerror(errno));
    }

    if (ready > 0) {
      if (fds[0].revents & POLLIN) {
        conns.push_back(std::make_unique<Conn>(listener.accept_connection()));
      }
      for (std::size_t i = 0; i + 1 < fds.size() && i < conns.size(); ++i) {
        Conn& conn = *conns[i];
        if (conn.closed || !(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
          continue;
        }
        char buf[65536];
        std::size_t n = 0;
        try {
          n = conn.sock.recv_some(buf, sizeof buf);
        } catch (const IoError&) {
          n = 0;
        }
        if (n == 0) {  // EOF: SIGKILLed worker, dropped link
          disconnect(conn, /*death=*/true);
          continue;
        }
        conn.last_seen.reset();
        conn.decoder.feed(buf, n);
        try {
          std::string payload;
          while (!conn.closed && conn.decoder.next(&payload)) {
            handle_frame(conn, payload);
          }
        } catch (const Error& e) {
          ALFI_LOG(kWarn) << "fleet: dropping worker (bad frame: " << e.what()
                          << ")";
          disconnect(conn, /*death=*/true);
        }
      }
    }

    // Liveness: a leased worker silent past the timeout is dead even if
    // its socket never closed (hung host, dropped link).
    for (const auto& conn : conns) {
      if (!conn->closed && conn->has_lease &&
          conn->last_seen.elapsed_ms() > fleet.lease_timeout_ms) {
        ALFI_LOG(kWarn) << "fleet: worker heartbeat timed out after "
                        << fleet.lease_timeout_ms << " ms";
        disconnect(*conn, /*death=*/true);
      }
    }

    // Reap exited children so SIGKILLed workers never linger as
    // zombies (their death is observed via socket EOF above).
    while (::waitpid(-1, nullptr, WNOHANG) > 0) {
    }

    // Grants: serve waiting workers from the lease queue.
    for (const auto& conn : conns) {
      if (conn->closed || !conn->active || !conn->want_lease) continue;
      const LeaseRange lease = table.grant(completed_fn);
      if (lease.empty()) break;  // nothing queued right now; keep waiting
      io::send_frame(conn->sock, encode_lease(FleetMsgKind::kLeaseGrant, lease));
      conn->want_lease = false;
      conn->has_lease = true;
      conn->lease = lease;
      conn->last_seen.reset();
      if (leases_granted != nullptr) leases_granted->add();
    }

    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->closed;
                               }),
                conns.end());
  };

  // A resumed campaign starts with a replayed prefix: advance the
  // cursor over it before the first worker frame arrives.
  cursor = progress.absorb_ascending(cursor, units, marks);

  bool drained = false;
  SteeringPolicy* policy = nullptr;
  std::unique_ptr<SteeringPolicy> policy_storage;
  if (!steered) {
    while (!progress.all_done()) {
      if (interrupted()) {
        drained = true;
        break;
      }
      pump();
      cursor = progress.absorb_ascending(cursor, units, marks);
      if (fleet.on_progress) fleet.on_progress(progress.done());
      print_progress(/*final_line=*/false);
    }
  } else {
    // The same planning loop as the threaded executor: each round's
    // unit list depends only on outcomes absorbed at prior barriers,
    // never on lease interleaving, so the executed sequence — and the
    // vulnerability map — is byte-identical to a local steered run.
    policy_storage = std::make_unique<SteeringPolicy>(std::move(cells),
                                                      config.steering);
    policy = policy_storage.get();
    std::vector<LeaseRange> round_ranges;
    std::vector<std::size_t> ready;
    while (!drained) {
      if (interrupted()) { drained = true; break; }
      const std::vector<std::size_t> round = policy->plan_round();
      if (round.empty()) break;
      // Lease only units the journal has not already replayed,
      // coalesced into contiguous ranges (grant() re-caps them at
      // lease_units).
      round_ranges.clear();
      std::size_t outstanding = 0;
      for (const std::size_t t : round) {
        if (progress.unit_completed(t)) continue;
        ++outstanding;
        if (!round_ranges.empty() && round_ranges.back().end == t) {
          ++round_ranges.back().end;
        } else {
          round_ranges.push_back({t, t + 1});
        }
      }
      table.seed(round_ranges);
      while (outstanding > 0) {
        if (interrupted()) { drained = true; break; }
        pump();
        outstanding = 0;
        for (const std::size_t t : round) {
          if (!progress.unit_completed(t)) ++outstanding;
        }
        print_progress(/*final_line=*/false);
      }
      // Round barrier: absorb in plan (ascending) order so journal
      // bytes never depend on which worker shipped what, then feed the
      // policy before planning the next round.
      ready.clear();
      for (const std::size_t t : round) {
        if (progress.unit_completed(t)) ready.push_back(t);
      }
      progress.absorb_units(ready, marks);
      for (const std::size_t t : ready) {
        policy->record(t, task_.classify_unit(t, progress.payload(t)));
      }
      while (cursor < units && progress.unit_completed(cursor)) ++cursor;
      if (fleet.on_progress) fleet.on_progress(progress.done());
      if (ready.size() < round.size()) drained = true;
    }
  }
  print_progress(/*final_line=*/true);

  // Tell every remaining worker the campaign is over (best effort) and
  // drop the connections.
  for (const auto& conn : conns) {
    if (conn->closed) continue;
    try {
      io::send_frame(conn->sock, encode_kind(FleetMsgKind::kNoWork));
    } catch (const IoError&) {
    }
    conn->sock.close();
  }
  conns.clear();
  for (const int pid : child_pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);  // ECHILD for already-reaped — fine
  }

  if (drained) {
    // Journal whatever was stored past the cursor (holes from re-leased
    // ranges) so resume replays instead of recomputing it.
    progress.flush_pending();
    progress.close(marks);
    throw CampaignInterrupted(progress.done(), units, config.checkpoint_dir);
  }

  progress.close(marks);  // final checkpoint (steered: over executed units)
  if (steered) {
    ALFI_LOG(kInfo) << "steered fleet campaign complete: " << progress.done()
                    << "/" << units << " units executed";
    if (metrics_ != nullptr) {
      metrics_->gauge("steering.units_executed")
          .set(static_cast<double>(progress.done()));
    }
  }
  progress.merge();
  if (steered && !config.steering.map_path.empty()) {
    io::write_vulnerability_map(
        config.steering.map_path,
        policy->build_map(task_.task_kind(), config.model_name, units));
    ALFI_LOG(kInfo) << "vulnerability map written to "
                    << config.steering.map_path;
  }
}

}  // namespace alfi::core
