#include "core/fault_matrix.h"

#include "io/binary.h"

namespace alfi::core {

namespace {
constexpr char kFaultMagic[4] = {'A', 'L', 'F', 'M'};
constexpr char kRecordMagic[4] = {'A', 'L', 'F', 'R'};
constexpr std::uint32_t kVersion = 1;

void write_fault(io::BinaryWriter& writer, const Fault& fault) {
  writer.write_u8(static_cast<std::uint8_t>(fault.target));
  writer.write_u8(static_cast<std::uint8_t>(fault.value_type));
  writer.write_i64(fault.batch);
  writer.write_i64(fault.layer);
  writer.write_i64(fault.channel_out);
  writer.write_i64(fault.channel_in);
  writer.write_i64(fault.depth);
  writer.write_i64(fault.height);
  writer.write_i64(fault.width);
  writer.write_i64(fault.bit_pos);
  writer.write_f32(fault.number_value);
}

Fault read_fault(io::BinaryReader& reader) {
  Fault fault;
  fault.target = static_cast<FaultTarget>(reader.read_u8());
  fault.value_type = static_cast<ValueType>(reader.read_u8());
  fault.batch = reader.read_i64();
  fault.layer = reader.read_i64();
  fault.channel_out = reader.read_i64();
  fault.channel_in = reader.read_i64();
  fault.depth = reader.read_i64();
  fault.height = reader.read_i64();
  fault.width = reader.read_i64();
  fault.bit_pos = static_cast<int>(reader.read_i64());
  fault.number_value = reader.read_f32();
  return fault;
}

}  // namespace

bool operator==(const Fault& a, const Fault& b) {
  return a.target == b.target && a.value_type == b.value_type && a.batch == b.batch &&
         a.layer == b.layer && a.channel_out == b.channel_out &&
         a.channel_in == b.channel_in && a.depth == b.depth && a.height == b.height &&
         a.width == b.width && a.bit_pos == b.bit_pos &&
         a.number_value == b.number_value;
}

const Fault& FaultMatrix::at(std::size_t column) const {
  ALFI_CHECK(column < faults_.size(), "fault column out of range");
  return faults_[column];
}

std::vector<Fault> FaultMatrix::slice(std::size_t begin, std::size_t count) const {
  ALFI_CHECK(begin + count <= faults_.size(), "fault slice out of range");
  return {faults_.begin() + static_cast<std::ptrdiff_t>(begin),
          faults_.begin() + static_cast<std::ptrdiff_t>(begin + count)};
}

std::vector<std::vector<std::int64_t>> FaultMatrix::table_rows() const {
  std::vector<std::vector<std::int64_t>> rows(7,
                                              std::vector<std::int64_t>(size()));
  for (std::size_t col = 0; col < size(); ++col) {
    const Fault& f = faults_[col];
    if (f.target == FaultTarget::kNeurons) {
      rows[0][col] = f.batch;
      rows[1][col] = f.layer;
      rows[2][col] = f.channel_out;
    } else {
      rows[0][col] = f.layer;
      rows[1][col] = f.channel_out;
      rows[2][col] = f.channel_in;
    }
    rows[3][col] = f.depth;
    rows[4][col] = f.height;
    rows[5][col] = f.width;
    rows[6][col] = f.value_type == ValueType::kRandomValue
                       ? static_cast<std::int64_t>(f.number_value)
                       : f.bit_pos;
  }
  return rows;
}

void FaultMatrix::save(const std::string& path) const {
  io::BinaryWriter writer(path, io::WriteMode::kAtomic);
  writer.write_header(kFaultMagic, kVersion);
  writer.write_u64(faults_.size());
  for (const Fault& fault : faults_) write_fault(writer, fault);
  writer.close();
}

FaultMatrix FaultMatrix::load(const std::string& path) {
  io::BinaryReader reader(path);
  const std::uint32_t version = reader.read_header(kFaultMagic);
  if (version != kVersion) throw ParseError("unsupported fault file version: " + path);
  const std::uint64_t count = reader.read_u64();
  std::vector<Fault> faults;
  faults.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) faults.push_back(read_fault(reader));
  return FaultMatrix(std::move(faults));
}

io::Json FaultMatrix::to_json() const {
  io::Json arr = io::Json::array();
  for (const Fault& f : faults_) {
    io::Json entry = io::Json::object();
    entry["target"] = io::Json(to_string(f.target));
    entry["value_type"] = io::Json(to_string(f.value_type));
    entry["batch"] = io::Json(f.batch);
    entry["layer"] = io::Json(f.layer);
    entry["channel_out"] = io::Json(f.channel_out);
    entry["channel_in"] = io::Json(f.channel_in);
    entry["depth"] = io::Json(f.depth);
    entry["height"] = io::Json(f.height);
    entry["width"] = io::Json(f.width);
    entry["bit_pos"] = io::Json(f.bit_pos);
    entry["number_value"] = io::Json(static_cast<double>(f.number_value));
    arr.push_back(entry);
  }
  return arr;
}

void save_injection_records(const std::vector<InjectionRecord>& records,
                            const std::string& path) {
  io::BinaryWriter writer(path, io::WriteMode::kAtomic);
  writer.write_header(kRecordMagic, kVersion);
  writer.write_u64(records.size());
  for (const InjectionRecord& record : records) {
    write_fault(writer, record.fault);
    writer.write_u64(record.inference_index);
    writer.write_f32(record.original_value);
    writer.write_f32(record.corrupted_value);
    writer.write_string(record.flip_direction);
  }
  writer.close();
}

std::vector<InjectionRecord> load_injection_records(const std::string& path) {
  io::BinaryReader reader(path);
  const std::uint32_t version = reader.read_header(kRecordMagic);
  if (version != kVersion) {
    throw ParseError("unsupported injection record file version: " + path);
  }
  const std::uint64_t count = reader.read_u64();
  std::vector<InjectionRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    InjectionRecord record;
    record.fault = read_fault(reader);
    record.inference_index = reader.read_u64();
    record.original_value = reader.read_f32();
    record.corrupted_value = reader.read_f32();
    record.flip_direction = reader.read_string();
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace alfi::core
