#include "core/kpi.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace alfi::core {

TopK topk_of_logits(std::span<const float> logits, std::size_t k) {
  // Non-finite-aware softmax.  Fault injection routinely drives logits
  // to +Inf/NaN, and the naive stable softmax computes exp(Inf - Inf) =
  // NaN there, poisoning every reported probability on exactly the
  // units the SDE/DUE KPIs exist to measure.  Semantics: any +Inf logit
  // takes the whole mass (split evenly across +Inf entries); NaN and
  // -Inf logits carry zero mass; a row with no finite and no +Inf
  // logits degrades to all-zero probs.
  std::vector<float> probs(logits.size(), 0.0f);
  std::size_t inf_count = 0;
  float maxv = -std::numeric_limits<float>::infinity();
  for (const float v : logits) {
    if (v == std::numeric_limits<float>::infinity()) ++inf_count;
    else if (!std::isnan(v)) maxv = std::max(maxv, v);
  }
  if (inf_count > 0) {
    const float share = 1.0f / static_cast<float>(inf_count);
    for (std::size_t i = 0; i < logits.size(); ++i) {
      if (logits[i] == std::numeric_limits<float>::infinity()) probs[i] = share;
    }
  } else if (std::isfinite(maxv)) {
    double total = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
      const float v = logits[i];
      probs[i] = std::isnan(v) ? 0.0f : static_cast<float>(std::exp(v - maxv));
      total += probs[i];
    }
    if (total > 0.0) {
      for (float& p : probs) p = static_cast<float>(p / total);
    }
  }  // else: all logits are -Inf/NaN — keep the all-zero row

  TopK out;
  out.classes = ops::topk_indices(logits, k);
  out.probs.reserve(out.classes.size());
  for (const std::size_t c : out.classes) out.probs.push_back(probs[c]);
  return out;
}

namespace {

/// Matches of one class in one image at one IoU threshold: marks each
/// detection TP/FP greedily by descending score.
struct ClassDetections {
  std::vector<float> scores;
  std::vector<bool> true_positive;
};

ClassDetections match_class(
    const std::vector<data::Annotation>& ground_truth,
    const std::vector<models::Detection>& detections, std::size_t category,
    float iou_threshold) {
  std::vector<const data::Annotation*> gts;
  for (const data::Annotation& gt : ground_truth) {
    if (gt.category_id == category) gts.push_back(&gt);
  }
  std::vector<const models::Detection*> dets;
  for (const models::Detection& det : detections) {
    if (det.category == category) dets.push_back(&det);
  }
  std::stable_sort(dets.begin(), dets.end(),
                   [](const models::Detection* a, const models::Detection* b) {
                     return a->score > b->score;
                   });

  ClassDetections out;
  std::vector<bool> gt_used(gts.size(), false);
  for (const models::Detection* det : dets) {
    float best_iou = 0.0f;
    std::size_t best_gt = gts.size();
    for (std::size_t g = 0; g < gts.size(); ++g) {
      if (gt_used[g]) continue;
      const float overlap = data::iou(det->box, gts[g]->bbox);
      if (overlap >= iou_threshold && overlap > best_iou) {
        best_iou = overlap;
        best_gt = g;
      }
    }
    out.scores.push_back(det->score);
    if (best_gt < gts.size()) {
      gt_used[best_gt] = true;
      out.true_positive.push_back(true);
    } else {
      out.true_positive.push_back(false);
    }
  }
  return out;
}

/// One pooled detection: its score and whether it matched a ground truth.
struct Scored {
  float score;
  bool tp;
};

/// 101-point COCO-interpolated AP over detections pooled across images
/// (sorts `pooled` by descending score in place).
double ap_from_pooled(std::vector<Scored>& pooled, std::size_t gt_total) {
  std::stable_sort(pooled.begin(), pooled.end(),
                   [](const Scored& a, const Scored& b) { return a.score > b.score; });

  // precision/recall curve
  std::vector<double> precision, recall;
  std::size_t tp = 0, fp = 0;
  for (const Scored& s : pooled) {
    if (s.tp) ++tp;
    else ++fp;
    precision.push_back(static_cast<double>(tp) / static_cast<double>(tp + fp));
    recall.push_back(static_cast<double>(tp) / static_cast<double>(gt_total));
  }

  // monotone non-increasing precision envelope
  for (std::size_t i = precision.size(); i-- > 1;) {
    precision[i - 1] = std::max(precision[i - 1], precision[i]);
  }

  // 101-point interpolation (COCO)
  double ap = 0.0;
  std::size_t cursor = 0;
  for (int r = 0; r <= 100; ++r) {
    const double target = r / 100.0;
    while (cursor < recall.size() && recall[cursor] < target) ++cursor;
    ap += (cursor < precision.size()) ? precision[cursor] : 0.0;
  }
  return ap / 101.0;
}

/// COCO maxDets: keeps only the top `max_dets` detections per image by
/// score (all classes together, as pycocotools does).
std::vector<std::vector<models::Detection>> cap_detections(
    const std::vector<std::vector<models::Detection>>& detections,
    std::size_t max_dets) {
  std::vector<std::vector<models::Detection>> capped = detections;
  for (std::vector<models::Detection>& dets : capped) {
    if (dets.size() <= max_dets) continue;
    std::stable_sort(dets.begin(), dets.end(),
                     [](const models::Detection& a, const models::Detection& b) {
                       return a.score > b.score;
                     });
    dets.resize(max_dets);
  }
  return capped;
}

}  // namespace

double average_precision(
    const std::vector<std::vector<data::Annotation>>& ground_truth,
    const std::vector<std::vector<models::Detection>>& detections,
    std::size_t category, float iou_threshold) {
  ALFI_CHECK(ground_truth.size() == detections.size(),
             "ground truth / detection image counts differ");

  // Pool detections across all images, keeping per-image matching.
  std::vector<Scored> pooled;
  std::size_t gt_total = 0;
  for (std::size_t img = 0; img < ground_truth.size(); ++img) {
    for (const data::Annotation& gt : ground_truth[img]) {
      if (gt.category_id == category) ++gt_total;
    }
    const ClassDetections matched =
        match_class(ground_truth[img], detections[img], category, iou_threshold);
    for (std::size_t i = 0; i < matched.scores.size(); ++i) {
      pooled.push_back({matched.scores[i], matched.true_positive[i]});
    }
  }
  if (gt_total == 0) return -1.0;  // class absent: COCO skips it
  return ap_from_pooled(pooled, gt_total);
}

std::vector<float> coco_iou_thresholds() {
  std::vector<float> thresholds;
  thresholds.reserve(kCocoIouSteps);
  for (int step = 0; step < kCocoIouSteps; ++step) {
    thresholds.push_back(static_cast<float>(50 + 5 * step) / 100.0f);
  }
  return thresholds;
}

CocoSummary evaluate_coco(
    const std::vector<std::vector<data::Annotation>>& ground_truth,
    const std::vector<std::vector<models::Detection>>& detections,
    std::size_t num_classes) {
  ALFI_CHECK(ground_truth.size() == detections.size(),
             "ground truth / detection image counts differ");
  CocoSummary summary;

  // COCO maxDets=100 applies to AP and AR alike; cap once, up front.
  const std::vector<std::vector<models::Detection>> capped =
      cap_detections(detections, kCocoMaxDetections);
  const std::vector<float> thresholds = coco_iou_thresholds();

  // Ground-truth counts per class do not depend on the IoU threshold;
  // counting them once here instead of per (threshold, class) saves
  // kCocoIouSteps redundant scans of every annotation per class.
  std::vector<std::size_t> gt_per_class(num_classes, 0);
  for (const std::vector<data::Annotation>& image_gt : ground_truth) {
    for (const data::Annotation& gt : image_gt) {
      if (gt.category_id < num_classes) ++gt_per_class[gt.category_id];
    }
  }

  // One match pass per (threshold, class, image) feeds both AP (pooled
  // scored matches) and AR (TP count over ground-truth total).
  double ap_sum_5095 = 0.0;
  std::size_t ap_terms = 0;
  double ar_sum = 0.0;
  std::size_t ar_terms = 0;
  for (int step = 0; step < kCocoIouSteps; ++step) {
    const float threshold = thresholds[static_cast<std::size_t>(step)];
    double class_sum = 0.0;
    std::size_t class_count = 0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      const std::size_t gt_total = gt_per_class[c];
      if (gt_total == 0) continue;  // class absent: COCO skips it
      std::vector<Scored> pooled;
      std::size_t tp = 0;
      for (std::size_t img = 0; img < ground_truth.size(); ++img) {
        const ClassDetections matched =
            match_class(ground_truth[img], capped[img], c, threshold);
        for (std::size_t i = 0; i < matched.scores.size(); ++i) {
          pooled.push_back({matched.scores[i], matched.true_positive[i]});
          tp += matched.true_positive[i] ? 1 : 0;
        }
      }
      class_sum += ap_from_pooled(pooled, gt_total);
      ++class_count;
      ar_sum += static_cast<double>(tp) / static_cast<double>(gt_total);
      ++ar_terms;
    }
    if (class_count == 0) continue;
    const double map_at_t = class_sum / static_cast<double>(class_count);
    ap_sum_5095 += map_at_t;
    ++ap_terms;
    if (step == 0) summary.ap_50 = map_at_t;
    if (step == kCocoAp75Step) summary.ap_75 = map_at_t;
  }
  summary.ap_5095 = ap_terms == 0 ? 0.0 : ap_sum_5095 / static_cast<double>(ap_terms);
  summary.ar_100 = ar_terms == 0 ? 0.0 : ar_sum / static_cast<double>(ar_terms);
  return summary;
}

bool detections_differ(const std::vector<models::Detection>& original,
                       const std::vector<models::Detection>& faulty,
                       float iou_threshold) {
  // Bidirectional matching: every original detection must have a
  // same-class faulty counterpart and vice versa.  Each original takes
  // its best-IoU unused candidate (ties broken by lowest index) rather
  // than the first one above threshold — first-fit is emission-order
  // dependent, so an original box could grab a faulty detection that a
  // later original needed and flag a spurious IVMOD difference.
  std::vector<bool> faulty_used(faulty.size(), false);
  for (const models::Detection& orig : original) {
    float best_iou = -1.0f;
    std::size_t best = faulty.size();
    for (std::size_t i = 0; i < faulty.size(); ++i) {
      if (faulty_used[i] || faulty[i].category != orig.category) continue;
      const float overlap = data::iou(faulty[i].box, orig.box);
      if (overlap >= iou_threshold && overlap > best_iou) {
        best_iou = overlap;
        best = i;
      }
    }
    if (best == faulty.size()) return true;  // FN introduced by the fault
    faulty_used[best] = true;
  }
  for (const bool used : faulty_used) {
    if (!used) return true;  // FP introduced by the fault
  }
  return false;
}

}  // namespace alfi::core
