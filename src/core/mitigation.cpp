#include "core/mitigation.h"

#include <cmath>

#include "nn/layers.h"

namespace alfi::core {

bool is_activation_layer(const nn::Module& module) {
  const std::string type = module.type();
  return type == "ReLU" || type == "LeakyReLU" || type == "Sigmoid" ||
         type == "Tanh" || type == "GELU" || type == "AttentionSoftmax";
}

ActivationRangeProfiler::ActivationRangeProfiler(nn::Module& model) {
  model.for_each_module([this](const std::string& path, nn::Module& m) {
    if (!is_activation_layer(m)) return;
    bounds_[path] = RangeBounds{std::numeric_limits<float>::infinity(),
                                -std::numeric_limits<float>::infinity()};
    const nn::HookHandle handle = m.register_forward_hook(
        [this, path](nn::Module&, const Tensor&, Tensor& output) {
          RangeBounds& b = bounds_[path];
          for (const float v : output.data()) {
            if (std::isnan(v) || std::isinf(v)) continue;
            b.lo = std::min(b.lo, v);
            b.hi = std::max(b.hi, v);
          }
        });
    attachments_.push_back({&m, handle});
  });
}

ActivationRangeProfiler::~ActivationRangeProfiler() {
  for (const Attachment& a : attachments_) a.module->remove_forward_hook(a.handle);
}

RangeMap profile_activation_ranges(nn::Module& model,
                                   const std::vector<Tensor>& calibration_batches) {
  ALFI_CHECK(!calibration_batches.empty(), "need calibration data for profiling");
  ActivationRangeProfiler profiler(model);
  for (const Tensor& batch : calibration_batches) model.forward(batch);
  RangeMap bounds = profiler.bounds();
  for (auto& [path, b] : bounds) {
    ALFI_CHECK(std::isfinite(b.lo) && std::isfinite(b.hi),
               "profiling never reached activation layer " + path);
  }
  return bounds;
}

const char* to_string(MitigationKind kind) {
  switch (kind) {
    case MitigationKind::kRanger: return "ranger";
    case MitigationKind::kClipper: return "clipper";
  }
  return "?";
}

Protection::Protection(nn::Module& model, const RangeMap& bounds, MitigationKind kind)
    : kind_(kind) {
  model.for_each_module([this, &bounds](const std::string& path, nn::Module& m) {
    if (!is_activation_layer(m)) return;
    const auto it = bounds.find(path);
    ALFI_CHECK(it != bounds.end(), "no profiled bounds for activation layer " + path);
    const RangeBounds range = it->second;
    const MitigationKind mode = kind_;
    const nn::HookHandle handle = m.register_forward_hook(
        [this, range, mode](nn::Module&, const Tensor&, Tensor& output) {
          if (!enabled_) return;
          for (float& v : output.data()) {
            const bool out_of_range = std::isnan(v) || v < range.lo || v > range.hi;
            if (!out_of_range) continue;
            ++corrections_;
            if (mode == MitigationKind::kClipper) {
              v = 0.0f;
            } else {  // Ranger: truncate into the profiled range
              // NaN replacement must also respect the profiled range: a
              // bare 0.0f escapes it when lo > 0 (softmax/sigmoid
              // profiles), feeding downstream layers a value the
              // fault-free network never produces.  Clamping 0 into
              // [lo, hi] is identity whenever 0 is in range (all ReLU
              // profiles), so CNN campaigns are unchanged.
              v = std::isnan(v) ? std::min(std::max(0.0f, range.lo), range.hi)
                                : std::min(std::max(v, range.lo), range.hi);
            }
          }
        });
    attachments_.push_back({&m, handle});
    module_bounds_.emplace(&m, range);
  });
  ALFI_CHECK(!attachments_.empty(), "model has no activation layers to protect");
}

bool Protection::can_replay(const nn::Module& module, const Tensor& cached) {
  if (!enabled_) return true;
  const auto it = module_bounds_.find(&module);
  if (it == module_bounds_.end()) return true;  // layer is not range-supervised
  const RangeBounds range = it->second;
  for (const float v : cached.data()) {
    if (std::isnan(v) || v < range.lo || v > range.hi) return false;
  }
  return true;
}

Protection::~Protection() {
  for (const Attachment& a : attachments_) a.module->remove_forward_hook(a.handle);
}

}  // namespace alfi::core
