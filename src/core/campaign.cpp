#include "core/campaign.h"

#include <exception>
#include <thread>

#include "util/error.h"

namespace alfi::core {

namespace {

/// Shard stream seed: mixes the campaign seed with the shard's first
/// global work-unit index so the stream depends on *what* the shard
/// covers, never on how many workers the operator chose.
std::uint64_t shard_seed(std::uint64_t seed, std::size_t begin) {
  std::uint64_t state = seed ^ 0xa1f1'c0de'5eed'0001ULL;
  const std::uint64_t mixed = splitmix64_next(state);
  return mixed ^ (0x9e37'79b9'7f4a'7c15ULL * (static_cast<std::uint64_t>(begin) + 1));
}

}  // namespace

CampaignRunner::CampaignRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? default_job_count() : jobs) {}

std::size_t CampaignRunner::default_job_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<CampaignShard> CampaignRunner::shard_columns(std::size_t count,
                                                         std::size_t jobs,
                                                         std::uint64_t seed) {
  ALFI_CHECK(jobs > 0, "shard_columns needs at least one job");
  std::vector<CampaignShard> shards;
  if (count == 0) return shards;
  const std::size_t workers = std::min(jobs, count);
  const std::size_t base = count / workers;
  const std::size_t extra = count % workers;
  std::size_t begin = 0;
  shards.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    CampaignShard shard;
    shard.index = i;
    shard.begin = begin;
    shard.end = begin + size;
    shard.rng = Rng(shard_seed(seed, begin));
    shards.push_back(std::move(shard));
    begin += size;
  }
  ALFI_CHECK(begin == count, "shard partition must cover every work unit");
  return shards;
}

void CampaignRunner::run_shards(
    const std::vector<CampaignShard>& shards,
    const std::function<void(const CampaignShard&)>& work) const {
  if (shards.empty()) return;
  if (shards.size() == 1) {
    work(shards.front());
    return;
  }
  std::vector<std::exception_ptr> errors(shards.size());
  std::vector<std::thread> threads;
  threads.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    threads.emplace_back([&shards, &work, &errors, i] {
      try {
        work(shards[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace alfi::core
