#include "core/campaign.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "util/stopwatch.h"

#include "core/steering.h"
#include "io/atomic_file.h"
#include "io/vulnerability_map.h"
#include "util/drain.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace alfi::core {

namespace {

/// Shard stream seed: mixes the campaign seed with the shard's first
/// global work-unit index so the stream depends on *what* the shard
/// covers, never on how many workers the operator chose.
std::uint64_t shard_seed(std::uint64_t seed, std::size_t begin) {
  std::uint64_t state = seed ^ 0xa1f1'c0de'5eed'0001ULL;
  const std::uint64_t mixed = splitmix64_next(state);
  return mixed ^ (0x9e37'79b9'7f4a'7c15ULL * (static_cast<std::uint64_t>(begin) + 1));
}

constexpr char kCheckpointMagic[4] = {'A', 'C', 'K', 'P'};
constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace

CampaignRunner::CampaignRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? default_job_count() : jobs) {}

std::size_t CampaignRunner::default_job_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<CampaignShard> CampaignRunner::shard_columns(std::size_t count,
                                                         std::size_t jobs,
                                                         std::uint64_t seed) {
  ALFI_CHECK(jobs > 0, "shard_columns needs at least one job");
  std::vector<CampaignShard> shards;
  if (count == 0) return shards;
  const std::size_t workers = std::min(jobs, count);
  const std::size_t base = count / workers;
  const std::size_t extra = count % workers;
  std::size_t begin = 0;
  shards.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    CampaignShard shard;
    shard.index = i;
    shard.begin = begin;
    shard.end = begin + size;
    shard.rng = Rng(shard_seed(seed, begin));
    shards.push_back(std::move(shard));
    begin += size;
  }
  ALFI_CHECK(begin == count, "shard partition must cover every work unit");
  return shards;
}

void CampaignRunner::run_shards(
    const std::vector<CampaignShard>& shards,
    const std::function<void(const CampaignShard&)>& work) const {
  if (shards.empty()) return;
  if (shards.size() == 1) {
    work(shards.front());
    return;
  }
  std::vector<std::exception_ptr> errors(shards.size());
  std::vector<std::thread> threads;
  threads.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    threads.emplace_back([&shards, &work, &errors, i] {
      try {
        work(shards[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

// ---- checkpoint file --------------------------------------------------------

CampaignInterrupted::CampaignInterrupted(std::size_t completed, std::size_t total,
                                         std::string checkpoint_dir)
    : Error(strformat("campaign drained to checkpoint: %zu/%zu units complete, "
                      "resume from %s",
                      completed, total, checkpoint_dir.c_str())),
      completed_(completed),
      total_(total),
      checkpoint_dir_(std::move(checkpoint_dir)) {}

void CampaignCheckpoint::save(const std::string& path) const {
  io::ByteWriter w;
  w.write_bytes(std::string_view(kCheckpointMagic, 4));
  w.write_u32(kCheckpointVersion);
  w.write_u64(fingerprint);
  w.write_string(task_kind);
  w.write_u64(unit_count);
  w.write_u64(completed_units);
  w.write_u64(rnd_seed);
  w.write_u64(journal_valid_bytes);
  w.write_u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardWaterMark& shard : shards) {
    w.write_u64(shard.begin);
    w.write_u64(shard.end);
    w.write_u64(shard.high_water);
  }
  // sync=true: the checkpoint must never reference journal bytes the
  // kernel has not made durable.
  io::write_file_atomic(path, w.bytes(), /*sync=*/true);
}

CampaignCheckpoint CampaignCheckpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  io::ByteReader r(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.read_u8());
  if (std::string_view(magic, 4) != std::string_view(kCheckpointMagic, 4)) {
    throw ParseError("bad magic in checkpoint file: " + path);
  }
  const std::uint32_t version = r.read_u32();
  if (version != kCheckpointVersion) {
    throw ParseError("unsupported checkpoint version in " + path);
  }
  CampaignCheckpoint cp;
  cp.fingerprint = r.read_u64();
  cp.task_kind = r.read_string();
  cp.unit_count = r.read_u64();
  cp.completed_units = r.read_u64();
  cp.rnd_seed = r.read_u64();
  cp.journal_valid_bytes = r.read_u64();
  const std::uint32_t shard_count = r.read_u32();
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ShardWaterMark shard;
    shard.begin = r.read_u64();
    shard.end = r.read_u64();
    shard.high_water = r.read_u64();
    cp.shards.push_back(shard);
  }
  return cp;
}

// ---- shared progress bookkeeping --------------------------------------------

CampaignProgress::CampaignProgress(CampaignTask& task,
                                   util::MetricsRegistry* metrics)
    : task_(task), metrics_(metrics) {
  units_ = task_.unit_count();
  fingerprint_ = task_.fingerprint();
  checkpointing_ = !task_.base_config().checkpoint_dir.empty();
  payloads_.resize(units_);
  completed_.assign(units_, 0);
  pending_.assign(units_, 0);
  if (metrics_ != nullptr) {
    units_total_ = &metrics_->counter("units.total");
    units_computed_ = &metrics_->counter("units.computed");
    units_replayed_ = &metrics_->counter("units.replayed");
    journal_frames_ = &metrics_->counter("journal.frames");
    journal_payload_bytes_ = &metrics_->counter("journal.payload_bytes");
    checkpoint_writes_ = &metrics_->counter("checkpoint.writes");
    journal_append_ms_ = &metrics_->histogram("journal.append_ms");
    checkpoint_write_ms_ = &metrics_->histogram("checkpoint.write_ms");
  }
  if (units_total_ != nullptr) units_total_->add(units_);
}

void CampaignProgress::recover() {
  const CampaignConfigBase& config = task_.base_config();
  ALFI_CHECK(!config.resume || checkpointing_,
             "resume requires a checkpoint directory");
  if (!config.resume) {
    if (checkpointing_) std::filesystem::create_directories(config.checkpoint_dir);
    return;
  }
  const std::string cp_path =
      BatchedCampaignExecutor::checkpoint_path(config.checkpoint_dir);
  const std::string jn_path =
      BatchedCampaignExecutor::journal_path(config.checkpoint_dir);
  const CampaignCheckpoint checkpoint = CampaignCheckpoint::load(cp_path);
  if (checkpoint.fingerprint != fingerprint_ ||
      checkpoint.task_kind != task_.task_kind() ||
      checkpoint.unit_count != units_) {
    throw ConfigError(
        "refusing to resume: checkpoint was written by a different campaign "
        "(scenario, fault matrix, seed or workload changed) — delete " +
        config.checkpoint_dir + " to start over");
  }
  io::JournalScan scan = io::scan_journal(jn_path);
  if (scan.header.fingerprint != fingerprint_ ||
      scan.header.task_kind != task_.task_kind()) {
    throw ConfigError("refusing to resume: journal fingerprint mismatch in " +
                      jn_path);
  }
  if (scan.torn_tail) {
    ALFI_LOG(kWarn) << "journal has a torn tail at byte " << scan.valid_bytes
                    << "; truncating (the affected units will be recomputed)";
    io::repair_journal(jn_path, scan);
  }
  for (auto& [unit, payload] : scan.units) {
    if (unit >= units_ || completed_[unit]) continue;  // duplicate or stray frame
    payloads_[unit] = std::move(payload);
    completed_[unit] = 1;
    ++done_;
  }
  ALFI_LOG(kInfo) << "resuming campaign: " << done_ << "/" << units_
                  << " units recovered from journal";
  if (units_replayed_ != nullptr) units_replayed_->add(done_);
}

void CampaignProgress::open(const WaterMarks& marks) {
  const CampaignConfigBase& config = task_.base_config();
  if (!checkpointing_) return;
  io::JournalHeader header;
  header.fingerprint = fingerprint_;
  header.unit_count = units_;
  header.task_kind = task_.task_kind();
  journal_ = std::make_unique<io::JournalWriter>(
      BatchedCampaignExecutor::journal_path(config.checkpoint_dir), header,
      config.resume);
  if (!config.resume) write_checkpoint(marks);
}

bool CampaignProgress::store(std::size_t unit, std::string payload) {
  ALFI_CHECK(unit < units_, "unit index out of range");
  if (completed_[unit]) {
    // Fleet lease re-issue can complete a unit twice (a falsely-dead
    // worker keeps shipping).  First-complete wins; determinism means
    // both must have computed identical bytes — anything else is a
    // corrupted worker, not a benign race.
    ALFI_CHECK(payloads_[unit] == payload,
               "duplicate unit completion with divergent payload bytes");
    return false;
  }
  payloads_[unit] = std::move(payload);
  completed_[unit] = 1;
  pending_[unit] = 1;
  return true;
}

void CampaignProgress::absorb_one(std::size_t t, const WaterMarks& marks) {
  const CampaignConfigBase& config = task_.base_config();
  pending_[t] = 0;
  const std::string& payload = payloads_[t];
  if (journal_) {
    const Stopwatch append_watch;
    journal_->append_unit(t, payload);
    if (journal_append_ms_ != nullptr) {
      journal_append_ms_->record(append_watch.elapsed_ms());
    }
    if (journal_frames_ != nullptr) journal_frames_->add();
    if (journal_payload_bytes_ != nullptr) {
      journal_payload_bytes_->add(payload.size());
    }
  }
  ++done_;
  if (units_computed_ != nullptr) units_computed_->add();
  if (checkpointing_ && ++done_since_checkpoint_ >= config.checkpoint_every) {
    done_since_checkpoint_ = 0;
    write_checkpoint(marks);
  }
}

std::size_t CampaignProgress::absorb_ascending(std::size_t cursor,
                                               std::size_t end,
                                               const WaterMarks& marks) {
  while (cursor < end && completed_[cursor]) {
    if (pending_[cursor]) absorb_one(cursor, marks);
    ++cursor;
  }
  return cursor;
}

void CampaignProgress::absorb_units(const std::vector<std::size_t>& units,
                                    const WaterMarks& marks) {
  for (const std::size_t t : units) {
    ALFI_CHECK(t < units_ && completed_[t],
               "absorb_units expects completed units");
    if (pending_[t]) absorb_one(t, marks);
  }
}

void CampaignProgress::flush_pending() {
  if (!journal_) return;
  for (std::size_t t = 0; t < units_; ++t) {
    if (!pending_[t]) continue;
    pending_[t] = 0;
    journal_->append_unit(t, payloads_[t]);
    if (journal_frames_ != nullptr) journal_frames_->add();
    if (journal_payload_bytes_ != nullptr) {
      journal_payload_bytes_->add(payloads_[t].size());
    }
  }
}

void CampaignProgress::write_checkpoint(const WaterMarks& marks) {
  if (!checkpointing_) return;
  const CampaignConfigBase& config = task_.base_config();
  Stopwatch cp_watch;
  journal_->sync();
  CampaignCheckpoint cp;
  cp.fingerprint = fingerprint_;
  cp.task_kind = task_.task_kind();
  cp.unit_count = units_;
  cp.completed_units = done_;
  cp.rnd_seed = task_.task_scenario().rnd_seed;
  cp.journal_valid_bytes = std::filesystem::file_size(
      BatchedCampaignExecutor::journal_path(config.checkpoint_dir));
  cp.shards = marks();
  cp.save(BatchedCampaignExecutor::checkpoint_path(config.checkpoint_dir));
  if (checkpoint_writes_ != nullptr) checkpoint_writes_->add();
  if (checkpoint_write_ms_ != nullptr) {
    checkpoint_write_ms_->record(cp_watch.elapsed_ms());
  }
}

void CampaignProgress::close(const WaterMarks& marks) {
  if (!checkpointing_ || !journal_) return;
  write_checkpoint(marks);
  journal_->close();
}

void CampaignProgress::merge() {
  // Only completed units: a budgeted/steered campaign legitimately
  // finishes with a subset executed, and absorbing a never-executed
  // unit's empty payload would corrupt the outputs.  The executed SET
  // is plan-deterministic, and ascending order restores the serial
  // output order over it, so outputs stay byte-identical for any job
  // count / fleet size.
  for (std::size_t t = 0; t < units_; ++t) {
    if (!completed_[t]) continue;
    task_.absorb_unit(t, payloads_[t]);
  }
  task_.finalize();
}

// ---- executor ---------------------------------------------------------------

BatchedCampaignExecutor::BatchedCampaignExecutor(CampaignTask& task,
                                                 util::MetricsRegistry* metrics)
    : task_(task), metrics_(metrics) {}

std::string BatchedCampaignExecutor::journal_path(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/journal.bin";
}

std::string BatchedCampaignExecutor::checkpoint_path(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/checkpoint.bin";
}

void BatchedCampaignExecutor::execute() {
  if (task_.base_config().steering.enabled()) {
    execute_steered();
    return;
  }
  const CampaignConfigBase& config = task_.base_config();
  const Scenario& scenario = task_.task_scenario();
  const std::size_t units = task_.unit_count();

  const std::function<bool()> interrupted =
      config.interrupt ? config.interrupt : std::function<bool()>(&drain_requested);

  util::Histogram* unit_ms =
      metrics_ != nullptr ? &metrics_->histogram("campaign.unit_ms") : nullptr;

  // All crash-safety bookkeeping lives in CampaignProgress (shared with
  // the fleet coordinator); the executor serializes access to it under
  // merge_mutex.
  CampaignProgress progress(task_, metrics_);
  progress.recover();

  // prepare() after resume validation: meta-files are (re)written
  // identically, calibration bounds recomputed deterministically.
  task_.prepare();

  const CampaignRunner runner(config.jobs);
  const std::vector<CampaignShard> shards =
      CampaignRunner::shard_columns(units, runner.jobs(), scenario.rnd_seed);

  const CampaignProgress::WaterMarks marks = [&] {
    std::vector<ShardWaterMark> ms;
    ms.reserve(shards.size());
    for (const CampaignShard& shard : shards) {
      ShardWaterMark mark{shard.begin, shard.end, shard.begin};
      while (mark.high_water < shard.end && progress.unit_completed(mark.high_water)) {
        ++mark.high_water;
      }
      ms.push_back(mark);
    }
    return ms;
  };

  // Opens the journal and — on a fresh run — writes the initial
  // checkpoint, so a crash before the first periodic write still
  // leaves a resumable directory.
  progress.open(marks);

  // Everything the workers publish goes through this mutex: journal
  // appends, payload/completion bookkeeping and checkpoint writes.
  std::mutex merge_mutex;

  // Throttled --progress line: at most one stderr update per 200ms,
  // written under merge_mutex so lines never interleave.
  const Stopwatch campaign_watch;
  double last_progress_ms = -1.0;
  const auto print_progress_locked = [&](bool final_line) {
    if (!config.progress) return;
    const double now_ms = campaign_watch.elapsed_ms();
    if (!final_line && last_progress_ms >= 0.0 && now_ms - last_progress_ms < 200.0) {
      return;
    }
    last_progress_ms = now_ms;
    const std::size_t done = progress.done();
    const double pct = units == 0 ? 100.0 : 100.0 * static_cast<double>(done) /
                                                static_cast<double>(units);
    const double rate = now_ms <= 0.0 ? 0.0 : static_cast<double>(done) /
                                                  (now_ms / 1000.0);
    std::fprintf(stderr, "\r[alfi] %zu/%zu units (%5.1f%%) %8.1f units/s%s",
                 done, units, pct, rate, final_line ? "\n" : "");
    std::fflush(stderr);
  };

  // Unit packing: clamp the requested pack size to what the workload
  // supports.  pack == 1 hands the runner one unit per call — the
  // classic executor, bit for bit.
  const std::size_t pack =
      std::max<std::size_t>(1, std::min(config.unit_batch == 0
                                            ? std::size_t{1}
                                            : config.unit_batch,
                                        task_.max_unit_pack()));
  if (config.unit_batch > 1 && pack < config.unit_batch) {
    ALFI_LOG(kInfo) << "unit batch clamped to " << pack
                    << " (workload max_unit_pack)";
  }
  const std::size_t stride = std::max<std::size_t>(1, task_.unit_pack_stride());

  // Deferred absorb (DESIGN.md §12): a pack holds units {t, t+stride,
  // ...}, so units complete out of ascending order.  Journal frames,
  // unit counters and checkpoint cadence must still match
  // unit-at-a-time execution, so each shard absorbs from its own
  // ascending cursor (progress.absorb_ascending) and payloads the
  // cursor has not reached yet stay pending inside progress.
  if (!shards.empty()) {
    const bool shared_model = shards.size() == 1;
    if (shards.size() > 1) {
      ALFI_LOG(kInfo) << "parallel campaign: " << units << " units across "
                      << shards.size() << " shards (" << runner.jobs() << " jobs)";
    }
    runner.run_shards(shards, [&](const CampaignShard& shard) {
      std::unique_ptr<CampaignUnitRunner> unit_runner;  // created lazily:
      // a fully-journaled shard never pays for a model replica.
      const Stopwatch shard_watch;
      std::size_t shard_computed = 0;
      std::size_t absorb_cursor = shard.begin;  // next unit to journal/count
      std::vector<std::size_t> pack_units;
      for (std::size_t t = shard.begin; t < shard.end;) {
        if (progress.unit_completed(t)) { ++t; continue; }  // replayed or pack-mate
        if (interrupted()) break;
        if (!unit_runner) unit_runner = task_.make_unit_runner(shared_model);
        // Pack incomplete units at the task's stride: {t, t+S, t+2S, ...}.
        // The classification harness strides by dataset_size, so every
        // unit in the pack re-runs the SAME image under a different
        // fault group and the runner shares one fault-free pass across
        // the pack.  A journal-replayed unit ends the pack so replay
        // boundaries never change what a packed pass computes.
        pack_units.clear();
        for (std::size_t u = t;
             pack_units.size() < pack && u < shard.end && !progress.unit_completed(u);
             u += stride) {
          pack_units.push_back(u);
        }
        const Stopwatch unit_watch;
        std::vector<std::string> batch = unit_runner->run_unit_pack(pack_units);
        ALFI_CHECK(batch.size() == pack_units.size(),
                   "unit runner returned a wrong-sized payload batch");
        // The per-unit latency of a packed pass is its amortized share.
        const double per_unit_ms =
            unit_watch.elapsed_ms() / static_cast<double>(batch.size());
        shard_computed += batch.size();

        std::lock_guard<std::mutex> lock(merge_mutex);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          progress.store(pack_units[i], std::move(batch[i]));
          if (unit_ms != nullptr) unit_ms->record(per_unit_ms);
        }
        absorb_cursor = progress.absorb_ascending(absorb_cursor, shard.end, marks);
        print_progress_locked(/*final_line=*/false);
        ++t;
      }
      if (metrics_ != nullptr && shard_computed > 0) {
        const double seconds = shard_watch.elapsed_seconds();
        metrics_->gauge("worker." + std::to_string(shard.index) + ".units_per_sec")
            .set(seconds <= 0.0 ? 0.0 : static_cast<double>(shard_computed) / seconds);
      }
    });
  }
  {
    std::lock_guard<std::mutex> lock(merge_mutex);
    print_progress_locked(/*final_line=*/true);
  }

  // ---- drained? persist progress and surface the preemption ----------------
  if (!progress.all_done()) {
    {
      std::lock_guard<std::mutex> lock(merge_mutex);
      // Journal computed-but-unabsorbed pack payloads first: a strided
      // pack preempted past the absorb cursor replays from the journal
      // on resume instead of being recomputed.
      progress.flush_pending();
      progress.close(marks);
    }
    throw CampaignInterrupted(progress.done(), units, config.checkpoint_dir);
  }

  {
    std::lock_guard<std::mutex> lock(merge_mutex);
    progress.close(marks);  // final: high-water == end on every shard
  }

  // ---- merge: ascending unit order restores the serial output order --------
  progress.merge();
}

// ---- steered execution (DESIGN.md §16) --------------------------------------

void BatchedCampaignExecutor::execute_steered() {
  const CampaignConfigBase& config = task_.base_config();
  const Scenario& scenario = task_.task_scenario();
  const std::size_t units = task_.unit_count();

  const std::function<bool()> interrupted =
      config.interrupt ? config.interrupt : std::function<bool()>(&drain_requested);

  util::Histogram* unit_ms =
      metrics_ != nullptr ? &metrics_->histogram("campaign.unit_ms") : nullptr;

  std::vector<SteeringCellKey> cells = task_.steering_cells();
  if (cells.empty()) {
    throw ConfigError("workload '" + task_.task_kind() +
                      "' does not support campaign steering "
                      "(--budget / --steer / --vuln-map)");
  }
  ALFI_CHECK(cells.size() == units,
             "steering_cells must describe every work unit");

  CampaignProgress progress(task_, metrics_);
  progress.recover();
  task_.prepare();

  // Steered completion is not a prefix of [0, units), so the checkpoint
  // carries one global mark whose high-water is the first incomplete
  // unit; resume recovers from the journal frames, not the marks.
  const CampaignProgress::WaterMarks marks = [&] {
    ShardWaterMark mark{0, units, 0};
    while (mark.high_water < units && progress.unit_completed(mark.high_water)) {
      ++mark.high_water;
    }
    return std::vector<ShardWaterMark>{mark};
  };
  progress.open(marks);

  SteeringPolicy policy(std::move(cells), config.steering);
  const CampaignRunner runner(config.jobs);
  std::mutex merge_mutex;

  const Stopwatch campaign_watch;
  double last_progress_ms = -1.0;
  const auto print_progress_locked = [&](bool final_line) {
    if (!config.progress) return;
    const double now_ms = campaign_watch.elapsed_ms();
    if (!final_line && last_progress_ms >= 0.0 && now_ms - last_progress_ms < 200.0) {
      return;
    }
    last_progress_ms = now_ms;
    const std::size_t done = progress.done();
    const double rate = now_ms <= 0.0 ? 0.0 : static_cast<double>(done) /
                                                  (now_ms / 1000.0);
    std::fprintf(stderr, "\r[alfi] steered %zu units planned, %zu done %8.1f units/s%s",
                 policy.planned_units(), done, rate, final_line ? "\n" : "");
    std::fflush(stderr);
  };

  ALFI_LOG(kInfo) << "steered campaign: " << units << " units, budget "
                  << (config.steering.budget == 0
                          ? std::string("unlimited")
                          : std::to_string(config.steering.budget))
                  << (config.steering.steer ? ", adaptive early stopping" : "");

  // One runner per worker slot, reused across rounds (a replica clone
  // per round would dominate small-round campaigns).  Slot i is only
  // ever touched by round-shard i, and rounds are separated by the
  // barrier, so the pool needs no lock.
  std::vector<std::unique_ptr<CampaignUnitRunner>> runners(runner.jobs());
  const bool shared_model = runner.jobs() == 1;

  // The planning loop: each round's unit list depends only on outcomes
  // absorbed at prior-round barriers, so the executed unit sequence —
  // and with it journal bytes and the map — is identical for any job
  // count.  Resume replays the same loop; units already journaled are
  // recorded without being recomputed.
  bool drained = false;
  std::vector<std::size_t> todo;
  std::vector<std::size_t> ready;
  while (!drained) {
    if (interrupted()) { drained = true; break; }
    const std::vector<std::size_t> round = policy.plan_round();
    if (round.empty()) break;
    todo.clear();
    for (const std::size_t t : round) {
      if (!progress.unit_completed(t)) todo.push_back(t);
    }
    if (!todo.empty()) {
      const std::vector<CampaignShard> shards = CampaignRunner::shard_columns(
          todo.size(), runner.jobs(), scenario.rnd_seed);
      runner.run_shards(shards, [&](const CampaignShard& shard) {
        std::unique_ptr<CampaignUnitRunner>& unit_runner = runners[shard.index];
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          if (interrupted()) break;
          if (!unit_runner) unit_runner = task_.make_unit_runner(shared_model);
          const std::size_t t = todo[i];
          const Stopwatch unit_watch;
          std::string payload = unit_runner->run_unit(t);
          const double elapsed_ms = unit_watch.elapsed_ms();
          std::lock_guard<std::mutex> lock(merge_mutex);
          progress.store(t, std::move(payload));
          if (unit_ms != nullptr) unit_ms->record(elapsed_ms);
          print_progress_locked(/*final_line=*/false);
        }
      });
    }
    // Round barrier: absorb in plan (ascending) order — journal bytes
    // never depend on worker scheduling — then feed the policy.
    ready.clear();
    for (const std::size_t t : round) {
      if (progress.unit_completed(t)) ready.push_back(t);
    }
    progress.absorb_units(ready, marks);
    for (const std::size_t t : ready) {
      policy.record(t, task_.classify_unit(t, progress.payload(t)));
    }
    if (ready.size() < round.size()) drained = true;  // interrupted mid-round
  }
  print_progress_locked(/*final_line=*/true);

  if (drained) {
    progress.flush_pending();
    progress.close(marks);
    throw CampaignInterrupted(progress.done(), units, config.checkpoint_dir);
  }

  progress.close(marks);
  ALFI_LOG(kInfo) << "steered campaign complete: " << progress.done() << "/"
                  << units << " units executed ("
                  << (units == 0 ? 0.0
                                 : 100.0 * static_cast<double>(progress.done()) /
                                       static_cast<double>(units))
                  << "% of exhaustive)";
  if (metrics_ != nullptr) {
    metrics_->gauge("steering.units_executed")
        .set(static_cast<double>(progress.done()));
  }
  progress.merge();
  if (!config.steering.map_path.empty()) {
    io::write_vulnerability_map(
        config.steering.map_path,
        policy.build_map(task_.task_kind(), config.model_name, units));
    ALFI_LOG(kInfo) << "vulnerability map written to "
                    << config.steering.map_path;
  }
}

}  // namespace alfi::core
