// Distributed campaign fleet: a lease-based coordinator that farms
// contiguous unit ranges out to worker processes and merges their
// shipped results into outputs byte-identical to `--jobs 1`
// (DESIGN.md §14).
//
// Roles:
//   * FleetCoordinator — owns the campaign: resume recovery, the
//     journal, checkpoints and the final ordered merge (all through
//     CampaignProgress, shared with the threaded executor).  It leases
//     unit ranges to workers over a CRC32-framed TCP protocol
//     (io/socket.h), re-issues leases held by dead workers, and
//     absorbs shipped unit frames through one global ascending cursor
//     — so the journal it writes is byte-for-byte the journal a
//     checkpointed `--jobs 1` run would have written.
//   * FleetWorker — joins a coordinator, proves it is running the SAME
//     campaign (fingerprint + task kind + unit count handshake; a
//     mismatched scenario or binary is refused), then loops: request a
//     lease, compute its units with the ordinary CampaignUnitRunner
//     pack machinery, and stream each completed unit back as a frame
//     byte-identical to the journal's kUnit frames.
//
// Failure model: any frame from a worker counts as liveness; a worker
// silent past lease_timeout_ms — or whose connection drops (SIGKILL
// closes the socket) — is declared dead and its lease range is
// recycled.  A falsely-dead worker's late frames produce duplicate
// completions, which the coordinator dedupes (first-complete wins,
// byte-equality asserted — determinism means divergent duplicate bytes
// can only be corruption).  Workers drain to the lease boundary: a
// SIGINT mid-pack finishes the current lease, ships everything
// computed, and exits — nothing computed is ever lost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "core/campaign_task.h"
#include "util/metrics.h"

namespace alfi::core {

// ---- wire protocol ----------------------------------------------------------

/// Fleet control message kinds (payload byte 0).  Disjoint from
/// io::JournalFrameKind (1, 2): a shipped unit result uses the
/// journal's own kUnit payload, unchanged, so values start at 16.
enum class FleetMsgKind : std::uint8_t {
  kHello = 16,         ///< worker→coord: proto version, fingerprint, units, kind
  kWelcome = 17,       ///< coord→worker: worker id, heartbeat cadence
  kRefuse = 18,        ///< coord→worker: handshake rejected (reason string)
  kLeaseRequest = 19,  ///< worker→coord: give me work
  kLeaseGrant = 20,    ///< coord→worker: unit range [begin, end)
  kNoWork = 21,        ///< coord→worker: campaign complete, disconnect
  kHeartbeat = 22,     ///< worker→coord: liveness (any frame also counts)
  kLeaseDone = 23,     ///< worker→coord: every unit of the lease shipped
  kBye = 24,           ///< worker→coord: leaving (graceful)
};

/// Bumped when the frame payloads change shape; a version-mismatched
/// worker is refused just like a fingerprint mismatch.
inline constexpr std::uint32_t kFleetProtocolVersion = 1;

/// Builds the kHello payload a worker opens its connection with.
/// Exposed for protocol tests (handshake refusal without a real worker).
std::string encode_fleet_hello(std::uint64_t fingerprint, std::uint64_t unit_count,
                               const std::string& task_kind);

/// Splits a "--fleet-worker host:port" spec; throws ConfigError when it
/// is malformed.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& spec);

// ---- lease table ------------------------------------------------------------

/// One leased range of campaign units, [begin, end).
struct LeaseRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool empty() const { return begin >= end; }
  std::size_t size() const { return end - begin; }
};

/// Grantable-work bookkeeping for the coordinator.  Seeded with the
/// executor's own deterministic contiguous sharding
/// (CampaignRunner::shard_columns) capped at lease_units per range;
/// dead workers' ranges come back through recycle().  At grant time a
/// range is trimmed of leading already-completed units and split around
/// interior ones (both happen after a resume or a re-issue), so a grant
/// is always a maximal contiguous run of incomplete units within one
/// queued range, capped at lease_units.
class LeaseTable {
 public:
  using CompletedFn = std::function<bool(std::size_t unit)>;

  /// `units == 0` builds an empty table a steered coordinator refills
  /// round by round through seed().
  LeaseTable(std::size_t units, std::size_t lease_units, std::uint64_t seed);

  /// Appends ranges to the back of the queue.  The steered round loop
  /// leases exactly the round's planned units: workers block on their
  /// lease requests while the queue is empty (the round barrier) and
  /// resume as soon as the next round is seeded — the worker protocol
  /// needs no steering awareness at all.
  void seed(const std::vector<LeaseRange>& ranges);

  /// Next grantable range; empty when no queued work remains (there may
  /// still be outstanding leases in flight).
  LeaseRange grant(const CompletedFn& completed);

  /// Requeues (the remainder of) a dead or drained worker's lease, at
  /// the front so re-issued work finishes first and the global absorb
  /// cursor can keep advancing.
  void recycle(LeaseRange range);

  std::size_t queued_ranges() const { return queue_.size(); }

 private:
  std::deque<LeaseRange> queue_;
  std::size_t lease_units_;
};

// ---- worker -----------------------------------------------------------------

/// What a worker did before disconnecting.
struct FleetWorkerStats {
  std::size_t units_computed = 0;
  std::size_t leases_served = 0;
  /// A drain request arrived; the worker finished its lease, shipped
  /// everything and left early.  The coordinator keeps going.
  bool drained = false;
};

/// One worker process's campaign half: handshake, lease loop, unit
/// streaming.  Runs no merge and writes no campaign outputs.
class FleetWorker {
 public:
  /// `prepared` — the task's prepare() already ran in this process
  /// (true for coordinator-forked workers, which inherit the prepared
  /// model; false for a standalone `--fleet-worker` process).
  FleetWorker(CampaignTask& task, std::string host, std::uint16_t port,
              bool prepared);

  /// Throws ConfigError when the coordinator refuses the handshake,
  /// IoError when the connection dies.
  FleetWorkerStats run();

 private:
  CampaignTask& task_;
  std::string host_;
  std::uint16_t port_;
  bool prepared_;
};

// ---- coordinator ------------------------------------------------------------

/// Campaign-owning side of the fleet.  Drop-in alternative to
/// BatchedCampaignExecutor::execute() for a task whose config enables
/// fleet coordinator mode; requires a checkpoint directory (shipped
/// unit frames land in the same journal a local run would write).
///
/// Telemetry (under the task's registry): fleet.workers_joined,
/// fleet.workers_refused, fleet.worker_deaths, fleet.leases_granted,
/// fleet.leases_reissued, fleet.duplicate_units — plus every counter
/// CampaignProgress maintains for a local run.
class FleetCoordinator {
 public:
  explicit FleetCoordinator(CampaignTask& task,
                            util::MetricsRegistry* metrics = nullptr);

  /// Runs the campaign to completion (or drains to checkpoint, throwing
  /// CampaignInterrupted — re-run with resume=true to finish).
  void execute();

 private:
  CampaignTask& task_;
  util::MetricsRegistry* metrics_;
};

}  // namespace alfi::core
