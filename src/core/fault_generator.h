// Fault generation: Scenario + ModelProfile -> FaultMatrix.
//
// Implements the paper's pre-generation step (§V.C): n = dataset_size *
// num_runs * max_faults_per_image faults are drawn before the inference
// run.  Layer choice is either uniform over the eligible layers or
// weighted by relative layer size (Eq. (1)); the location within the
// layer is uniform over the weight / output tensor; the value is a bit
// position from rnd_bit_range or a number from rnd_value_range.
#pragma once

#include "core/fault_matrix.h"
#include "core/model_profile.h"
#include "core/scenario.h"
#include "util/rng.h"

namespace alfi::core {

/// Indices (into profile.layers()) of the layers the scenario allows.
/// Throws ConfigError if the restrictions exclude every layer.
std::vector<std::size_t> eligible_layers(const Scenario& scenario,
                                         const ModelProfile& profile);

/// Draws one fault into the given layer of the profile.
Fault generate_fault_in_layer(const Scenario& scenario, const LayerInfo& layer,
                              Rng& rng);

/// Draws one fault with scenario-driven layer selection.
Fault generate_fault(const Scenario& scenario, const ModelProfile& profile,
                     const std::vector<std::size_t>& eligible,
                     const std::vector<double>& layer_weights, Rng& rng);

/// Pre-generates the whole campaign's fault matrix (n columns).
FaultMatrix generate_fault_matrix(const Scenario& scenario,
                                  const ModelProfile& profile, Rng& rng);

}  // namespace alfi::core
