// Scenario: the campaign configuration read from scenarios/default.yml.
//
// Mirrors PyTorchALFI's scenario file (paper §IV.B, §V.C): the fault
// model (bit flips in a bit range, stuck-at, or random values), the
// injection target (neurons vs. weights), the injection policy
// (per_image / per_batch / per_epoch), transient vs. permanent faults,
// layer-type and layer-range restrictions, Eq.(1) size-weighted layer
// selection, and the run geometry (dataset_size a, num_runs b,
// max_faults_per_image c) from which the pre-generated fault count
// n = a*b*c follows.
//
// Scenarios are value types: campaigns may copy, mutate and re-apply
// them at run time (wrapper.get_scenario() / set_scenario(), §V.D).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/yaml.h"
#include "nn/module.h"
#include "nn/quantize.h"

namespace alfi::core {

enum class FaultTarget { kNeurons, kWeights };
enum class ValueType { kBitFlip, kStuckAt0, kStuckAt1, kRandomValue };
enum class InjectionPolicy { kPerImage, kPerBatch, kPerEpoch };
enum class FaultDuration { kTransient, kPermanent };

const char* to_string(FaultTarget target);
const char* to_string(ValueType type);
const char* to_string(InjectionPolicy policy);
const char* to_string(FaultDuration duration);

FaultTarget fault_target_from_string(const std::string& text);
ValueType value_type_from_string(const std::string& text);
InjectionPolicy injection_policy_from_string(const std::string& text);
FaultDuration fault_duration_from_string(const std::string& text);

struct Scenario {
  // -- fault model ---------------------------------------------------------
  FaultTarget target = FaultTarget::kNeurons;
  ValueType value_type = ValueType::kBitFlip;
  /// Inclusive fp32 bit range faults are drawn from (31 = sign,
  /// 30..23 = exponent, 22..0 = mantissa).
  int rnd_bit_range_lo = 0;
  int rnd_bit_range_hi = 31;
  /// Range for ValueType::kRandomValue.
  float rnd_value_min = -1.0f;
  float rnd_value_max = 1.0f;
  FaultDuration duration = FaultDuration::kTransient;
  InjectionPolicy inj_policy = InjectionPolicy::kPerImage;
  std::size_t max_faults_per_image = 1;

  // -- fault location restrictions ------------------------------------------
  /// Injectable layer kinds; empty = every kind the model advertises.
  std::vector<nn::LayerKind> layer_types;
  /// Inclusive [first, last] injectable-layer index range; nullopt = all.
  std::optional<std::pair<std::size_t, std::size_t>> layer_range;
  /// Eq.(1): weight layer choice by relative layer size.
  bool weighted_layer_selection = true;

  // -- inference configuration -------------------------------------------------
  /// Kernel backend the campaign computes with: "" or "ref" (the scalar
  /// reference oracle), "avx2", or "auto" (best available, falls back
  /// to ref).  Resolved against the registry by the harnesses at
  /// prepare time (tensor::resolve_backend); an unavailable explicit
  /// choice fails there, an unknown name already fails validation.
  std::string backend;
  /// Numeric representation of the model weights (DESIGN.md §13):
  /// emulated types round the fp32 values, stored types (fp16_stored,
  /// int8) additionally keep reduced-width codes that weight faults
  /// corrupt directly.  Activations always stay fp32.
  nn::NumericType numeric_type = nn::NumericType::kFloat32;

  // -- run geometry -----------------------------------------------------------
  std::size_t dataset_size = 100;  // a
  std::size_t num_runs = 1;        // b (epochs over the dataset)
  std::size_t batch_size = 8;
  std::uint64_t rnd_seed = 12345;

  /// n = dataset_size * num_runs * max_faults_per_image (paper §V.C).
  std::size_t total_faults() const {
    return dataset_size * num_runs * max_faults_per_image;
  }

  /// All field-level problems, empty when the scenario is valid.  Each
  /// entry is one human-readable complaint; validate() joins them.
  std::vector<std::string> validation_errors() const;

  /// Throws ConfigError listing every invalid field combination (not
  /// just the first one found).
  void validate() const;

  /// True if `kind` may receive faults under this scenario.
  bool allows_layer_kind(nn::LayerKind kind) const;

  // -- (de)serialization --------------------------------------------------------
  static Scenario from_yaml(const io::Json& tree);
  static Scenario from_yaml_file(const std::string& path);
  io::Json to_yaml() const;
  void save_yaml_file(const std::string& path) const;
};

/// Fluent scenario construction with deferred, aggregated validation.
///
/// Setting fields directly on a Scenario struct reports at most one
/// problem at a time (the first validate() throw) and cannot tell an
/// intentional default apart from a setting that the chosen fault model
/// ignores.  The builder records which knobs were touched and checks
/// everything at build():
///
///   Scenario s = ScenarioBuilder()
///                    .target(FaultTarget::kWeights)
///                    .bit_range(0, 7)
///                    .dataset_size(64)
///                    .build();   // throws ConfigError listing ALL problems
///
/// build() rejects, in one ConfigError that lists every offence:
///  - any field-level problem Scenario::validate() would flag,
///  - bit_range() combined with ValueType::kRandomValue (random-value
///    faults ignore bit positions),
///  - value_range() combined with a non-random value type,
///  - permanent faults combined with the per_image policy (a fault that
///    never heals cannot also be re-drawn for every image),
///  - layer_types() called with an empty list (would inject nowhere).
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  /// Seeds the builder from an existing scenario (e.g. one loaded from
  /// YAML) so single knobs can be overridden fluently.
  static ScenarioBuilder from(const Scenario& scenario);

  ScenarioBuilder& target(FaultTarget target);
  ScenarioBuilder& value_type(ValueType type);
  /// Inclusive fp32 bit range for bit-flip faults.
  ScenarioBuilder& bit_range(int lo, int hi);
  /// Value range for ValueType::kRandomValue.
  ScenarioBuilder& value_range(float min, float max);
  ScenarioBuilder& duration(FaultDuration duration);
  ScenarioBuilder& injection_policy(InjectionPolicy policy);
  ScenarioBuilder& max_faults_per_image(std::size_t count);
  ScenarioBuilder& layer_types(std::vector<nn::LayerKind> kinds);
  /// Inclusive [first, last] injectable-layer index range.
  ScenarioBuilder& layer_range(std::size_t first, std::size_t last);
  /// Clears any layer-type / layer-range restriction.
  ScenarioBuilder& any_layer();
  ScenarioBuilder& weighted_layer_selection(bool enabled);
  /// Kernel backend name ("ref", "avx2", "auto"); unknown names are
  /// reported by build() alongside every other problem.
  ScenarioBuilder& backend(std::string name);
  /// Weight numeric representation (emulated or stored; DESIGN.md §13).
  ScenarioBuilder& numeric_type(nn::NumericType type);
  ScenarioBuilder& dataset_size(std::size_t size);
  ScenarioBuilder& num_runs(std::size_t runs);
  ScenarioBuilder& batch_size(std::size_t size);
  ScenarioBuilder& seed(std::uint64_t seed);

  /// Validates and returns the scenario.  Throws ConfigError whose
  /// message lists every problem, not just the first.
  Scenario build() const;

 private:
  Scenario s_;
  bool bit_range_set_ = false;
  bool value_range_set_ = false;
  bool layer_types_set_ = false;
};

}  // namespace alfi::core
