#include "core/campaign_task.h"

#include <algorithm>

#include "core/fault_matrix.h"
#include "core/injector.h"
#include "io/yaml.h"
#include "util/hash.h"

namespace alfi::core {

SteeringUnitOutcome CampaignTask::classify_unit(std::size_t t,
                                                const std::string& payload) const {
  (void)t;
  (void)payload;
  throw ConfigError("workload '" + task_kind() +
                    "' does not support campaign steering");
}

std::vector<std::string> CampaignUnitRunner::run_unit_pack(
    const std::vector<std::size_t>& units) {
  std::vector<std::string> payloads;
  payloads.reserve(units.size());
  for (const std::size_t t : units) {
    payloads.push_back(run_unit(t));
  }
  return payloads;
}

void write_fault_bytes(io::ByteWriter& writer, const Fault& fault) {
  writer.write_u8(static_cast<std::uint8_t>(fault.target));
  writer.write_u8(static_cast<std::uint8_t>(fault.value_type));
  writer.write_i64(fault.batch);
  writer.write_i64(fault.layer);
  writer.write_i64(fault.channel_out);
  writer.write_i64(fault.channel_in);
  writer.write_i64(fault.depth);
  writer.write_i64(fault.height);
  writer.write_i64(fault.width);
  writer.write_i64(fault.bit_pos);
  writer.write_f32(fault.number_value);
}

Fault read_fault_bytes(io::ByteReader& reader) {
  Fault fault;
  fault.target = static_cast<FaultTarget>(reader.read_u8());
  fault.value_type = static_cast<ValueType>(reader.read_u8());
  fault.batch = reader.read_i64();
  fault.layer = reader.read_i64();
  fault.channel_out = reader.read_i64();
  fault.channel_in = reader.read_i64();
  fault.depth = reader.read_i64();
  fault.height = reader.read_i64();
  fault.width = reader.read_i64();
  fault.bit_pos = static_cast<int>(reader.read_i64());
  fault.number_value = reader.read_f32();
  return fault;
}

void write_record_bytes(io::ByteWriter& writer, const InjectionRecord& record) {
  write_fault_bytes(writer, record.fault);
  writer.write_u64(record.inference_index);
  writer.write_f32(record.original_value);
  writer.write_f32(record.corrupted_value);
  writer.write_string(record.flip_direction);
}

InjectionRecord read_record_bytes(io::ByteReader& reader) {
  InjectionRecord record;
  record.fault = read_fault_bytes(reader);
  record.inference_index = static_cast<std::size_t>(reader.read_u64());
  record.original_value = reader.read_f32();
  record.corrupted_value = reader.read_f32();
  record.flip_direction = reader.read_string();
  return record;
}

std::uint64_t campaign_fingerprint(const Scenario& scenario,
                                   const FaultMatrix& faults) {
  // The scenario's YAML dump covers every field (including the seed);
  // the fault matrix is digested column by column so a different matrix
  // of the same size still changes the fingerprint.
  std::uint64_t h = fnv1a64(io::dump_yaml(scenario.to_yaml()));
  io::ByteWriter matrix_bytes;
  matrix_bytes.write_u64(faults.size());
  for (const Fault& fault : faults.faults()) {
    write_fault_bytes(matrix_bytes, fault);
  }
  return fnv1a64(matrix_bytes.bytes(), h);
}

std::size_t diff_prefix_boundary(const Injector& injector,
                                 const nn::InferenceWorkspace& baseline) {
  if (!baseline.planned()) return 0;  // no cached pass to replay from
  std::size_t boundary = nn::InferenceWorkspace::kSkipAllLeaves;
  bool unmapped = false;
  injector.for_each_armed_layer([&](std::size_t layer) {
    const nn::Module* module = injector.profile().layer(layer).module;
    const std::optional<std::size_t> index = baseline.leaf_exec_index(*module);
    if (!index.has_value()) {
      unmapped = true;  // armed layer outside this workspace's pass
      return;
    }
    boundary = std::min(boundary, *index);
  });
  return unmapped ? 0 : boundary;
}

}  // namespace alfi::core
