// Umbrella header: the complete public fault-injection API (the paper's
// "alficore" component, Fig. 1).
#pragma once

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/fault.h"
#include "core/fault_generator.h"
#include "core/fault_matrix.h"
#include "core/fleet.h"
#include "core/hw_injector.h"
#include "core/injector.h"
#include "core/kpi.h"
#include "core/mitigation.h"
#include "core/model_profile.h"
#include "core/monitor.h"
#include "core/scenario.h"
#include "core/test_img_class.h"
#include "core/test_obj_det.h"
#include "core/wrapper.h"
