// Adaptive campaign steering: budgeted sampling with early-stopping
// statistics (DESIGN.md §16, ROADMAP item 4).
//
// An exhaustive campaign runs every unit of the pre-generated fault
// matrix.  The steered campaign instead treats the matrix as a
// population stratified into *cells* — one per (layer, bit-position,
// fault-type) — and samples units cell by cell, maintaining an online
// Wilson confidence interval over each cell's SDC rate.  Once a cell's
// interval half-width falls below the configured threshold the cell is
// *decided* and stops consuming budget; the remaining `--budget N`
// units flow to the widest undecided cells.  The product is
// vulnerability_map.json: layers / bit positions / roles ranked by
// criticality, with the confidence bounds that justify stopping early.
//
// Determinism: sampling decisions are made in ROUNDS by a single
// planning loop (the executor thread or the fleet coordinator).  A
// round's unit list depends only on the scenario-derived cell layout
// and on outcomes of FULLY ABSORBED prior rounds — never on worker
// scheduling — so the same seed + budget yields the same unit sequence,
// and therefore a byte-identical map, under --jobs 1, --jobs N and the
// fleet.  Resume replays the identical planning loop; units already in
// the journal are recorded without being recomputed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "io/vulnerability_map.h"

namespace alfi::core {

/// Steering knobs carried in CampaignConfigBase.  Defaults make
/// `--steer` alone adaptive-exhaustive (stop early wherever confident)
/// and `--budget N` alone a plain stratified N-unit sample.
struct SteeringOptions {
  /// Maximum units the steered campaign may execute; 0 = uncapped.
  std::size_t budget = 0;
  /// Enable the early-stopping rule (cells stop sampling once decided).
  bool steer = false;
  /// Wilson critical value (1.96 ~ 95% confidence).
  double z = 1.96;
  /// A cell is decided once its SDC interval half-width is <= this.
  double half_width = 0.04;
  /// Never decide a cell before it has this many applied samples.
  std::size_t min_cell_samples = 8;
  /// Units per planning round; 0 = auto (unit_count / 8, at least 1).
  /// Must not depend on the job count — it is part of the plan.
  std::size_t round_units = 0;
  /// Where to write vulnerability_map.json; empty = no artifact.
  std::string map_path;

  /// Any steering feature requested?  Routes the campaign through the
  /// round-based executor path (which also emits the map).
  bool enabled() const { return steer || budget > 0 || !map_path.empty(); }
};

/// The sampling stratum one unit belongs to.  Cell identity is
/// (layer, bit_pos, value_type); `role` is per-layer metadata carried
/// into the map's role ranking.  Units with several faults are
/// attributed to their group's first fault (exact when
/// max_faults_per_image == 1, the recommended steering configuration).
struct SteeringCellKey {
  std::int64_t layer = -1;  ///< injectable-layer index, -1 = unattributed
  int bit_pos = -1;         ///< -1 for non-bit-flip fault types
  ValueType value_type = ValueType::kBitFlip;
  std::string role;  ///< nn::layer_kind_name of the layer, "" if unknown
};

/// What a unit's journaled payload says happened (CampaignTask::classify_unit).
struct SteeringUnitOutcome {
  bool sdc = false;
  bool due = false;
  /// The unit ran but no fault was actually applied (weight-less site,
  /// batch-slot skip): excluded from rate denominators, still charged
  /// to the budget.
  bool skipped = false;
};

/// The planning half of the steered campaign.  Single-threaded by
/// design: exactly one planner exists per campaign (executor thread or
/// fleet coordinator), and workers never see it.
///
///   SteeringPolicy policy(task.steering_cells(), options);
///   while (!(round = policy.plan_round()).empty()) {
///     ... execute round (threads / fleet leases) ...
///     for (t : round) policy.record(t, task.classify_unit(t, payload));
///   }
///   map = policy.build_map(...);
class SteeringPolicy {
 public:
  /// `unit_cells[t]` is unit t's cell key; size = task unit_count().
  SteeringPolicy(std::vector<SteeringCellKey> unit_cells,
                 SteeringOptions options);

  /// Plans the next round: up to round_units unplanned units, allotted
  /// round-robin to undecided cells in widest-interval-first order,
  /// returned ascending.  Empty = the campaign is finished (budget
  /// exhausted, every cell decided, or every unit planned).  Every
  /// returned unit is charged to the budget immediately — a resumed run
  /// replans the identical sequence and must reach the same cutoff.
  std::vector<std::size_t> plan_round();

  /// Feeds one planned unit's outcome back.  Call for every unit of a
  /// round before planning the next (the barrier is what makes plans
  /// worker-schedule independent).
  void record(std::size_t unit, const SteeringUnitOutcome& outcome);

  std::size_t planned_units() const { return planned_; }
  std::size_t recorded_units() const { return recorded_; }

  /// Assembles the ranked artifact from the recorded outcomes.
  /// Deterministic: depends only on cell aggregates and fixed sort
  /// orders, never on recording order.
  io::VulnerabilityMapFile build_map(const std::string& task_kind,
                                     const std::string& model,
                                     std::size_t exhaustive_units) const;

 private:
  struct Cell {
    SteeringCellKey key;
    std::vector<std::size_t> units;  ///< ascending unit ids in this cell
    std::size_t next_unit = 0;       ///< units[next_unit] = first unplanned
    std::size_t sampled = 0;         ///< recorded outcomes
    std::size_t skipped = 0;
    std::size_t sdc = 0;
    std::size_t due = 0;

    std::size_t applied() const { return sampled - skipped; }
    bool exhausted() const { return next_unit == units.size(); }
  };

  bool cell_decided(const Cell& cell) const;
  double cell_half_width(const Cell& cell) const;

  SteeringOptions options_;
  std::vector<Cell> cells_;              ///< sorted by (layer, bit, type)
  std::vector<std::size_t> unit_cell_;   ///< unit id -> index into cells_
  std::size_t total_units_ = 0;
  std::size_t planned_ = 0;
  std::size_t recorded_ = 0;
};

}  // namespace alfi::core
