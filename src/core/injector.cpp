#include "core/injector.h"

#include <algorithm>

#include "tensor/bits.h"

namespace alfi::core {

Injector::Injector(nn::Module& model, const ModelProfile& profile,
                   FaultDuration duration)
    : model_(model),
      profile_(profile),
      duration_(duration),
      neuron_faults_by_layer_(profile.layer_count()) {
  hook_handles_.reserve(profile.layer_count());
  for (std::size_t i = 0; i < profile.layer_count(); ++i) {
    hook_handles_.push_back(profile.layer(i).module->register_forward_hook(
        [this, i](nn::Module&, const Tensor&, Tensor& output) {
          apply_neuron_faults(i, output);
        }));
  }
}

Injector::~Injector() {
  restore_all_weights();
  for (std::size_t i = 0; i < hook_handles_.size(); ++i) {
    profile_.layer(i).module->remove_forward_hook(hook_handles_[i]);
  }
}

void Injector::arm(std::vector<Fault> faults) {
  if (armed_counter_ != nullptr) armed_counter_->add(faults.size());
  for (Fault& fault : faults) {
    ALFI_CHECK(fault.layer >= 0 &&
                   static_cast<std::size_t>(fault.layer) < profile_.layer_count(),
               "fault layer index out of range");
    if (fault.target == FaultTarget::kWeights) {
      apply_weight_fault(fault);
    } else {
      neuron_faults_by_layer_[static_cast<std::size_t>(fault.layer)].push_back(fault);
    }
  }
}

void Injector::set_metrics(util::MetricsRegistry* registry) {
  if (registry == nullptr) {
    armed_counter_ = nullptr;
    applied_counter_ = nullptr;
    skipped_counter_ = nullptr;
    weight_applied_counter_ = nullptr;
    weight_restore_counter_ = nullptr;
    role_applied_counters_.clear();
    role_weight_counters_.clear();
    return;
  }
  armed_counter_ = &registry->counter("injections.armed");
  applied_counter_ = &registry->counter("injections.applied");
  skipped_counter_ = &registry->counter("injections.skipped_batch_slot");
  weight_applied_counter_ = &registry->counter("injections.weight_applied");
  weight_restore_counter_ = &registry->counter("injections.weight_restores");
  // Per-role applied-fault counters for layers whose inventory names a
  // semantic site (attn_probs, q_proj, ...).  Layers with the historical
  // default roles register nothing, so CNN campaign metrics are
  // unchanged key-for-key.
  role_applied_counters_.assign(profile_.layer_count(), nullptr);
  role_weight_counters_.assign(profile_.layer_count(), nullptr);
  for (std::size_t i = 0; i < profile_.layer_count(); ++i) {
    const LayerInfo& layer = profile_.layer(i);
    if (layer.output_role != "activation") {
      role_applied_counters_[i] =
          &registry->counter("injections.applied_role." + layer.output_role);
    }
    if (layer.has_weight() && layer.weight_role != "weight") {
      role_weight_counters_[i] =
          &registry->counter("injections.weight_applied_role." + layer.weight_role);
    }
  }
}

void Injector::disarm() {
  for (auto& layer_faults : neuron_faults_by_layer_) layer_faults.clear();
  if (duration_ == FaultDuration::kTransient) restore_all_weights();
}

void Injector::restore_all_weights() {
  // Restore in reverse order so overlapping corruptions of one weight
  // unwind to the true original value.
  for (auto it = weight_restores_.rbegin(); it != weight_restores_.rend(); ++it) {
    if (it->stored && store_ != nullptr) {
      // Stored representation: writing the original code back refreshes
      // the fp32 view through dequantization, bit-exact.
      store_->set_code(*it->param, it->offset, it->original_code);
    } else {
      // Round-trip through the emulated representation so a restored
      // weight cannot carry bits below the type's lowest live bit
      // (identity for fp32).  Without this, an `original` captured from
      // an out-of-contract weight would silently re-break the
      // quantization invariant the campaign was configured to measure.
      it->param->value.flat(it->offset) =
          nn::quantize_value(it->original, numeric_type_);
    }
  }
  if (weight_restore_counter_ != nullptr) {
    weight_restore_counter_->add(weight_restores_.size());
  }
  weight_restores_.clear();
}

std::size_t Injector::armed_neuron_fault_count() const {
  std::size_t count = 0;
  for (const auto& layer_faults : neuron_faults_by_layer_) count += layer_faults.size();
  return count;
}

std::size_t Injector::earliest_armed_layer() const {
  std::size_t earliest = kNoArmedLayer;
  for_each_armed_layer([&earliest](std::size_t layer) {
    earliest = std::min(earliest, layer);
  });
  return earliest;
}

void Injector::for_each_armed_layer(const std::function<void(std::size_t)>& fn) const {
  std::vector<bool> armed(profile_.layer_count(), false);
  for (std::size_t i = 0; i < neuron_faults_by_layer_.size(); ++i) {
    // Count every armed fault, including ones aimed past the batch: the
    // layer's hook still runs skip accounting for them, so the layer
    // must recompute even though its values stay fault-free.
    if (!neuron_faults_by_layer_[i].empty()) armed[i] = true;
  }
  for (const WeightRestore& restore : weight_restores_) armed[restore.layer] = true;
  for (std::size_t i = 0; i < armed.size(); ++i) {
    if (armed[i]) fn(i);
  }
}

void Injector::apply_weight_fault(const Fault& fault) {
  const LayerInfo& layer = profile_.layer(static_cast<std::size_t>(fault.layer));
  nn::Parameter* weight = layer.weight;  // inventory-advertised weight site
  ALFI_CHECK(weight != nullptr, "weight fault on weight-less layer");
  const std::size_t offset = fault.weight_offset(weight->value.shape());

  const float original = weight->value.flat(offset);
  InjectionRecord record;
  record.fault = fault;
  record.inference_index = inference_index_;
  record.original_value = original;

  if (store_ != nullptr && store_->handles(weight)) {
    // Stored representation: the fault corrupts the reduced-width code;
    // the fp32 compute view is refreshed by dequantization.
    const std::uint32_t original_code = store_->code(*weight, offset);
    std::uint32_t corrupted_code = original_code;
    if (fault.value_type == ValueType::kRandomValue) {
      corrupted_code = store_->encode(*weight, offset, fault.number_value);
    } else {
      ALFI_CHECK(fault.bit_pos >= 0 &&
                     fault.bit_pos < nn::storage_bits(store_->type()),
                 "weight fault bit position exceeds stored representation width");
      const std::uint32_t mask = 1u << fault.bit_pos;
      switch (fault.value_type) {
        case ValueType::kBitFlip: corrupted_code ^= mask; break;
        case ValueType::kStuckAt0: corrupted_code &= ~mask; break;
        case ValueType::kStuckAt1: corrupted_code |= mask; break;
        case ValueType::kRandomValue: break;  // handled above
      }
    }
    const float corrupted = store_->set_code(*weight, offset, corrupted_code);
    weight_restores_.push_back({weight, offset, original,
                                static_cast<std::size_t>(fault.layer),
                                original_code, true});
    record.corrupted_value = corrupted;
    if (fault.value_type != ValueType::kRandomValue && fault.bit_pos >= 0 &&
        original_code != corrupted_code) {
      record.flip_direction =
          ((original_code >> fault.bit_pos) & 1u) == 0 ? "0->1" : "1->0";
    }
  } else {
    const float corrupted = fault.corrupt(original);
    weight->value.flat(offset) = corrupted;
    weight_restores_.push_back(
        {weight, offset, original, static_cast<std::size_t>(fault.layer)});
    record.corrupted_value = corrupted;
    if (fault.value_type != ValueType::kRandomValue && fault.bit_pos >= 0 &&
        original != corrupted) {
      record.flip_direction = bits::flip_direction(original, fault.bit_pos);
    }
  }
  if (weight_applied_counter_ != nullptr) weight_applied_counter_->add();
  const std::size_t layer_index = static_cast<std::size_t>(fault.layer);
  if (layer_index < role_weight_counters_.size() &&
      role_weight_counters_[layer_index] != nullptr) {
    role_weight_counters_[layer_index]->add();
  }
  records_.push_back(std::move(record));
}

void Injector::apply_neuron_faults(std::size_t layer_index, Tensor& output) {
  const std::vector<Fault>& faults = neuron_faults_by_layer_[layer_index];
  if (faults.empty()) return;

  ALFI_CHECK(output.rank() >= 2, "hooked layer output must be batched");
  const std::size_t batch = output.dim(0);
  const std::size_t per_sample = output.numel() / batch;
  const std::vector<std::size_t> sample_dims(output.shape().dims().begin() + 1,
                                             output.shape().dims().end());
  const Shape sample_shape{sample_dims};

  for (const Fault& fault : faults) {
    const std::size_t offset = fault.neuron_offset(sample_shape);
    const std::size_t first_slot =
        fault.batch < 0 ? 0 : static_cast<std::size_t>(fault.batch);
    if (fault.batch >= 0 && first_slot >= batch) {
      // A per-batch fault aimed past a short (final) batch: nothing is
      // corrupted, so the unit is effectively fault-free.  Count it —
      // silently dropping it shrinks the KPI denominators.
      ++skipped_injections_;
      if (skipped_counter_ != nullptr) skipped_counter_->add();
      continue;
    }
    const std::size_t last_slot = fault.batch < 0 ? batch - 1 : first_slot;

    for (std::size_t slot = first_slot; slot <= last_slot; ++slot) {
      float& cell = output.flat(slot * per_sample + offset);
      const float original = cell;
      const float corrupted = fault.corrupt(original);
      cell = corrupted;

      InjectionRecord record;
      record.fault = fault;
      record.fault.batch = static_cast<std::int64_t>(slot);
      record.inference_index = inference_index_;
      record.original_value = original;
      record.corrupted_value = corrupted;
      if (fault.value_type != ValueType::kRandomValue && fault.bit_pos >= 0 &&
          original != corrupted) {
        record.flip_direction = bits::flip_direction(original, fault.bit_pos);
      }
      records_.push_back(std::move(record));
      if (applied_counter_ != nullptr) applied_counter_->add();
      if (layer_index < role_applied_counters_.size() &&
          role_applied_counters_[layer_index] != nullptr) {
        role_applied_counters_[layer_index]->add();
      }
    }
  }
}

}  // namespace alfi::core
