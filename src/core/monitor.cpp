#include "core/monitor.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace alfi::core {

ModelMonitor::ModelMonitor(nn::Module& model) {
  model.for_each_module([this](const std::string& path, nn::Module& m) {
    if (!m.children().empty()) return;  // attach to leaf layers only
    const nn::HookHandle handle = m.register_forward_hook(
        [this, path](nn::Module&, const Tensor&, Tensor& output) {
          observe(path, output);
        });
    attachments_.push_back({&m, handle});
    paths_.emplace(&m, path);
  });
}

void ModelMonitor::on_replay(const nn::Module& module, const Tensor& cached) {
  const auto it = paths_.find(&module);
  if (it == paths_.end()) return;  // not a layer this monitor observes
  observe(it->second, cached);
}

ModelMonitor::~ModelMonitor() {
  for (const Attachment& a : attachments_) {
    a.module->remove_forward_hook(a.handle);
  }
}

void ModelMonitor::reset() {
  nan_layers_.clear();
  inf_layers_.clear();
  std::fill(slot_nan_.begin(), slot_nan_.end(), std::uint8_t{0});
  std::fill(slot_inf_.begin(), slot_inf_.end(), std::uint8_t{0});
}

void ModelMonitor::set_slot_count(std::size_t slots) {
  slot_count_ = slots;
  slot_nan_.assign(slots, 0);
  slot_inf_.assign(slots, 0);
}

bool ModelMonitor::slot_due(std::size_t slot) const {
  ALFI_CHECK(slot < slot_count_, "monitor slot index out of range");
  return slot_nan_[slot] != 0 || slot_inf_[slot] != 0;
}

void ModelMonitor::add_custom(CustomMonitor monitor) {
  ALFI_CHECK(static_cast<bool>(monitor), "custom monitor must not be empty");
  custom_.push_back(std::move(monitor));
}

void ModelMonitor::set_metrics(util::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    nan_total_ = nullptr;
    inf_total_ = nullptr;
    return;
  }
  nan_total_ = &registry->counter("monitor.nan_total");
  inf_total_ = &registry->counter("monitor.inf_total");
}

void ModelMonitor::observe(const std::string& path, const Tensor& output) {
  // The hook runs on every layer of every inference, so the all-finite
  // common case must be as cheap as possible.  A float is non-finite
  // iff its exponent field is all ones; a branchless max-reduction
  // over the masked exponent bits vectorizes, and the per-element
  // NaN-vs-Inf classification only runs when the sweep hits something.
  constexpr std::uint32_t kExpMask = 0x7f800000u;
  std::uint32_t worst_exp = 0;
  for (const float v : output.data()) {
    worst_exp = std::max(worst_exp, std::bit_cast<std::uint32_t>(v) & kExpMask);
  }
  if (worst_exp != kExpMask && custom_.empty()) return;

  if (worst_exp == kExpMask && slot_count_ > 0) {
    // Per-slot mode: classify each packed sample's row independently so
    // flags and counter increments equal those of slot_count_ separate
    // single-sample inferences (one increment per affected slot).
    ALFI_CHECK(output.rank() >= 1 && output.dim(0) == slot_count_,
               "per-slot monitoring requires dim(0) == slot count on every "
               "observed output");
    const std::size_t per_slot = output.numel() / slot_count_;
    const float* data = output.raw();
    for (std::size_t s = 0; s < slot_count_; ++s) {
      bool any_nan = false;
      bool any_inf = false;
      for (std::size_t i = 0; i < per_slot; ++i) {
        const float v = data[s * per_slot + i];
        any_nan |= std::isnan(v);
        any_inf |= std::isinf(v);
      }
      if (any_nan) {
        slot_nan_[s] = 1;
        nan_layers_.push_back(path);
        if (nan_total_ != nullptr) nan_total_->add();
        if (metrics_ != nullptr) metrics_->counter("monitor.nan." + path).add();
      }
      if (any_inf) {
        slot_inf_[s] = 1;
        inf_layers_.push_back(path);
        if (inf_total_ != nullptr) inf_total_->add();
        if (metrics_ != nullptr) metrics_->counter("monitor.inf." + path).add();
      }
    }
  } else {
    bool any_nan = false;
    bool any_inf = false;
    if (worst_exp == kExpMask) {
      for (const float v : output.data()) {
        any_nan |= std::isnan(v);
        any_inf |= std::isinf(v);
      }
    }
    if (any_nan) {
      nan_layers_.push_back(path);
      if (nan_total_ != nullptr) nan_total_->add();
      if (metrics_ != nullptr) metrics_->counter("monitor.nan." + path).add();
    }
    if (any_inf) {
      inf_layers_.push_back(path);
      if (inf_total_ != nullptr) inf_total_->add();
      if (metrics_ != nullptr) metrics_->counter("monitor.inf." + path).add();
    }
  }
  for (const CustomMonitor& monitor : custom_) monitor(path, output);
}

}  // namespace alfi::core
