#include "core/test_obj_det.h"

#include <filesystem>

#include "util/logging.h"

namespace alfi::core {

namespace {

Tensor probe_input(const data::DetectionDataset& dataset) {
  const data::DetectionSample sample = dataset.get(0);
  const Shape& s = sample.image.shape();
  return sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
}

/// COCO results format: flat list of {image_id, category_id, bbox, score}.
io::Json detections_to_coco(const std::vector<std::int64_t>& image_ids,
                            const std::vector<std::vector<models::Detection>>& dets) {
  io::Json arr = io::Json::array();
  for (std::size_t img = 0; img < dets.size(); ++img) {
    for (const models::Detection& det : dets[img]) {
      io::Json entry = io::Json::object();
      entry["image_id"] = io::Json(image_ids[img]);
      entry["category_id"] = io::Json(det.category);
      io::Json bbox = io::Json::array();
      bbox.push_back(io::Json(static_cast<double>(det.box.x)));
      bbox.push_back(io::Json(static_cast<double>(det.box.y)));
      bbox.push_back(io::Json(static_cast<double>(det.box.w)));
      bbox.push_back(io::Json(static_cast<double>(det.box.h)));
      entry["bbox"] = bbox;
      entry["score"] = io::Json(static_cast<double>(det.score));
      arr.push_back(entry);
    }
  }
  return arr;
}

}  // namespace

TestErrorModelsObjDet::TestErrorModelsObjDet(models::Detector& detector,
                                             const data::DetectionDataset& dataset,
                                             Scenario scenario,
                                             ObjDetCampaignConfig config)
    : detector_(detector),
      dataset_(dataset),
      config_(std::move(config)),
      wrapper_(detector.network(), std::move(scenario), probe_input(dataset)) {
  ALFI_CHECK(wrapper_.get_scenario().dataset_size <= dataset.size(),
             "scenario dataset_size exceeds the dataset");
  if (wrapper_.get_scenario().duration != FaultDuration::kTransient) {
    throw ConfigError(
        "the coupled campaign harness requires transient duration; "
        "use inj_policy per_epoch to model persistent faults");
  }
  if (!config_.fault_file.empty()) wrapper_.load_fault_matrix(config_.fault_file);
}

ObjDetCampaignResult TestErrorModelsObjDet::run() {
  const Scenario& scenario = wrapper_.get_scenario();
  ObjDetCampaignResult result;
  const bool write_outputs = !config_.output_dir.empty();
  nn::Module& network = detector_.network();

  if (write_outputs) {
    std::filesystem::create_directories(config_.output_dir);
    const std::string base = config_.output_dir + "/" + config_.model_name;

    result.ground_truth_json = base + "_ground_truth.json";
    io::write_json_file(result.ground_truth_json, data::coco_ground_truth(dataset_));

    result.scenario_yml = base + "_scenario.yml";
    io::Json meta = scenario.to_yaml();
    meta["meta"]["model"] = io::Json(config_.model_name);
    meta["meta"]["dataset"] = io::Json(dataset_.name());
    meta["meta"]["mitigation"] =
        io::Json(config_.mitigation ? to_string(*config_.mitigation) : "none");
    io::write_yaml_file(result.scenario_yml, meta);

    result.fault_bin = base + "_faults.bin";
    wrapper_.save_fault_matrix(result.fault_bin);
  }

  // Mitigation: profile bounds on fault-free calibration images.
  std::unique_ptr<Protection> protection;
  if (config_.mitigation) {
    std::vector<Tensor> calibration;
    const std::size_t count = std::min(config_.calibration_images, dataset_.size());
    ALFI_CHECK(count > 0, "no calibration images available");
    for (std::size_t i = 0; i < count; ++i) {
      const data::DetectionSample sample = dataset_.get(i);
      const Shape& s = sample.image.shape();
      calibration.push_back(sample.image.reshaped(Shape{1, s[0], s[1], s[2]}));
    }
    const RangeMap bounds = profile_activation_ranges(network, calibration);
    protection = std::make_unique<Protection>(network, bounds, *config_.mitigation);
    protection->set_enabled(false);
  }

  ModelMonitor monitor(network);
  FaultModelIterator iterator = wrapper_.get_fimodel_iter();
  IvmodKpis ivmod;
  ivmod.has_resil = config_.mitigation.has_value();

  std::vector<std::int64_t> image_ids;
  std::vector<std::vector<data::Annotation>> ground_truth;
  std::vector<std::vector<models::Detection>> orig_all, corr_all, resil_all;

  // Current fault group, re-armed per image with batch-slot remapping.
  std::size_t group_start = 0, group_size = 0;
  auto arm_for_image = [&](std::size_t slot_in_group) {
    std::vector<Fault> armed;
    for (const Fault& f : wrapper_.fault_matrix().slice(group_start, group_size)) {
      if (f.target == FaultTarget::kWeights) {
        armed.push_back(f);
      } else if (f.batch < 0 ||
                 f.batch == static_cast<std::int64_t>(slot_in_group)) {
        Fault remapped = f;
        remapped.batch = 0;
        armed.push_back(remapped);
      }
    }
    wrapper_.injector().arm(std::move(armed));
  };

  for (std::size_t epoch = 0; epoch < scenario.num_runs; ++epoch) {
    if (scenario.inj_policy == InjectionPolicy::kPerEpoch) {
      iterator.next();
      group_size = scenario.max_faults_per_image;
      group_start = iterator.position() - group_size;
    }

    for (std::size_t img = 0; img < scenario.dataset_size; ++img) {
      const std::size_t slot_in_batch = img % scenario.batch_size;
      switch (scenario.inj_policy) {
        case InjectionPolicy::kPerImage:
          iterator.next();
          group_size = scenario.max_faults_per_image;
          group_start = iterator.position() - group_size;
          break;
        case InjectionPolicy::kPerBatch:
          if (slot_in_batch == 0) {
            iterator.next();
            group_size = scenario.max_faults_per_image;
            group_start = iterator.position() - group_size;
          }
          break;
        case InjectionPolicy::kPerEpoch:
          break;
      }

      const data::DetectionSample sample = dataset_.get(img);
      const Shape& s = sample.image.shape();
      const Tensor input = sample.image.reshaped(Shape{1, s[0], s[1], s[2]});

      // ---- pass 1: fault-free ---------------------------------------------
      wrapper_.injector().disarm();
      if (protection) protection->set_enabled(false);
      auto orig = detector_.detect(input, config_.conf_threshold);

      // ---- pass 2: faulty ----------------------------------------------------
      const std::size_t slot = scenario.inj_policy == InjectionPolicy::kPerBatch
                                   ? slot_in_batch
                                   : 0;
      arm_for_image(slot);
      monitor.reset();
      auto corr = detector_.detect(input, config_.conf_threshold);
      const bool due = monitor.due_detected();

      // ---- pass 3: hardened ---------------------------------------------------
      std::vector<models::Detection> resil;
      if (protection) {
        wrapper_.injector().disarm();
        arm_for_image(slot);
        protection->set_enabled(true);
        auto resil_batched = detector_.detect(input, config_.conf_threshold);
        protection->set_enabled(false);
        resil = std::move(resil_batched[0]);
      }
      wrapper_.injector().disarm();

      // ---- verdicts --------------------------------------------------------------
      ++ivmod.total;
      const bool sde = !due && detections_differ(orig[0], corr[0]);
      ivmod.due_images += due ? 1 : 0;
      ivmod.sde_images += sde ? 1 : 0;
      if (protection) {
        ivmod.resil_sde_images +=
            (!due && detections_differ(orig[0], resil)) ? 1 : 0;
      }

      if (epoch == 0) {
        // mAP is evaluated over one pass of the dataset.
        image_ids.push_back(sample.meta.image_id);
        ground_truth.push_back(sample.annotations);
        orig_all.push_back(std::move(orig[0]));
        corr_all.push_back(std::move(corr[0]));
        if (protection) resil_all.push_back(std::move(resil));
      }
    }
    wrapper_.injector().disarm();
  }

  const std::size_t num_classes = detector_.num_classes();
  result.orig_map = evaluate_coco(ground_truth, orig_all, num_classes);
  result.faulty_map = evaluate_coco(ground_truth, corr_all, num_classes);
  if (config_.mitigation) {
    result.resil_map = evaluate_coco(ground_truth, resil_all, num_classes);
  }
  result.ivmod = ivmod;

  if (write_outputs) {
    const std::string base = config_.output_dir + "/" + config_.model_name;
    result.orig_json = base + "_orig_detections.json";
    io::write_json_file(result.orig_json, detections_to_coco(image_ids, orig_all));
    result.corr_json = base + "_corr_detections.json";
    io::write_json_file(result.corr_json, detections_to_coco(image_ids, corr_all));
    if (config_.mitigation) {
      result.resil_json = base + "_resil_detections.json";
      io::write_json_file(result.resil_json,
                          detections_to_coco(image_ids, resil_all));
    }
    result.trace_bin = base + "_trace.bin";
    save_injection_records(wrapper_.injector().records(), result.trace_bin);
  }

  return result;
}

}  // namespace alfi::core
