#include "core/test_obj_det.h"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "core/campaign.h"
#include "core/fleet.h"
#include "io/metrics_json.h"
#include "nn/workspace.h"
#include "tensor/backend.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace alfi::core {

namespace {

Tensor probe_input(const data::DetectionDataset& dataset) {
  const data::DetectionSample sample = dataset.get(0);
  const Shape& s = sample.image.shape();
  return sample.image.reshaped(Shape{1, s[0], s[1], s[2]});
}

/// COCO results format: flat list of {image_id, category_id, bbox, score}.
io::Json detections_to_coco(const std::vector<std::int64_t>& image_ids,
                            const std::vector<std::vector<models::Detection>>& dets) {
  io::Json arr = io::Json::array();
  for (std::size_t img = 0; img < dets.size(); ++img) {
    for (const models::Detection& det : dets[img]) {
      io::Json entry = io::Json::object();
      entry["image_id"] = io::Json(image_ids[img]);
      entry["category_id"] = io::Json(det.category);
      io::Json bbox = io::Json::array();
      bbox.push_back(io::Json(static_cast<double>(det.box.x)));
      bbox.push_back(io::Json(static_cast<double>(det.box.y)));
      bbox.push_back(io::Json(static_cast<double>(det.box.w)));
      bbox.push_back(io::Json(static_cast<double>(det.box.h)));
      entry["bbox"] = bbox;
      entry["score"] = io::Json(static_cast<double>(det.score));
      arr.push_back(entry);
    }
  }
  return arr;
}

void write_detections(io::ByteWriter& w,
                      const std::vector<models::Detection>& dets) {
  w.write_u64(dets.size());
  for (const models::Detection& det : dets) {
    w.write_f32(det.box.x);
    w.write_f32(det.box.y);
    w.write_f32(det.box.w);
    w.write_f32(det.box.h);
    w.write_u64(det.category);
    w.write_f32(det.score);
  }
}

std::vector<models::Detection> read_detections(io::ByteReader& r) {
  std::vector<models::Detection> dets(r.read_u64());
  for (models::Detection& det : dets) {
    det.box.x = r.read_f32();
    det.box.y = r.read_f32();
    det.box.w = r.read_f32();
    det.box.h = r.read_f32();
    det.category = static_cast<std::size_t>(r.read_u64());
    det.score = r.read_f32();
  }
  return dets;
}

/// Geometry of one work unit: which fault group it arms and which batch
/// slot neuron faults are remapped from.  Closed-form in t so the same
/// unit arms the same faults on any worker, job count or resumed run.
struct UnitAddress {
  std::size_t epoch = 0;
  std::size_t img = 0;
  std::size_t group_start = 0;
  std::size_t slot = 0;  ///< batch slot for per_batch remapping, else 0
  /// Images the unit's conceptual batch actually scores: batch_size for
  /// full batches, fewer for the short final batch of a non-divisible
  /// dataset.  Fault slots are taken modulo this, so a per-batch fault
  /// drawn past the short batch still lands on a scored image instead
  /// of being silently dropped (seed-stable: the drawn matrix is
  /// untouched, only the slot comparison re-maps).
  std::size_t occupancy = 1;
};

UnitAddress address_unit(const Scenario& scenario, std::size_t t) {
  UnitAddress addr;
  addr.epoch = t / scenario.dataset_size;
  addr.img = t % scenario.dataset_size;
  std::size_t group_number = 0;
  switch (scenario.inj_policy) {
    case InjectionPolicy::kPerImage:
      group_number = t;
      break;
    case InjectionPolicy::kPerBatch: {
      const std::size_t batches_per_epoch =
          (scenario.dataset_size + scenario.batch_size - 1) / scenario.batch_size;
      group_number =
          addr.epoch * batches_per_epoch + addr.img / scenario.batch_size;
      addr.slot = addr.img % scenario.batch_size;
      const std::size_t batch_first = addr.img - addr.slot;
      addr.occupancy =
          std::min(scenario.batch_size, scenario.dataset_size - batch_first);
      break;
    }
    case InjectionPolicy::kPerEpoch:
      group_number = addr.epoch;
      break;
  }
  addr.group_start = group_number * scenario.max_faults_per_image;
  return addr;
}

/// True when the unit's addressed neuron fault applies to its image:
/// every slot for batch < 0; for per_batch the drawn slot remapped onto
/// the batch's occupancy must equal the unit's slot; other policies
/// match the slot exactly (generated faults always draw slot 0 there).
bool fault_addresses_unit(const Scenario& scenario, const Fault& fault,
                          const UnitAddress& addr) {
  if (fault.batch < 0) return true;
  if (scenario.inj_policy == InjectionPolicy::kPerBatch) {
    return fault.batch % static_cast<std::int64_t>(addr.occupancy) ==
           static_cast<std::int64_t>(addr.slot);
  }
  return fault.batch == static_cast<std::int64_t>(addr.slot);
}

/// Fault groups the campaign consumes (the highest group number + 1).
std::size_t groups_needed(const Scenario& scenario) {
  switch (scenario.inj_policy) {
    case InjectionPolicy::kPerImage:
      return scenario.num_runs * scenario.dataset_size;
    case InjectionPolicy::kPerBatch:
      return scenario.num_runs *
             ((scenario.dataset_size + scenario.batch_size - 1) /
              scenario.batch_size);
    case InjectionPolicy::kPerEpoch:
      return scenario.num_runs;
  }
  return 0;
}

}  // namespace

/// Per-worker unit engine for the detection campaign.  A shared runner
/// drives the wrapped original detector (single-shard serial path);
/// otherwise it owns a Detector::clone() replica with its own injection
/// stack.
class ObjDetUnitRunner final : public CampaignUnitRunner {
 public:
  ObjDetUnitRunner(TestErrorModelsObjDet& harness, bool shared_model)
      : h_(harness) {
    const Scenario& scenario = h_.wrapper_.get_scenario();
    if (shared_model) {
      detector_ = &h_.detector_;
      injector_ptr_ = &h_.wrapper_.injector();
    } else {
      replica_ = h_.detector_.clone();
      profile_ = std::make_unique<ModelProfile>(replica_->network(),
                                                probe_input(h_.dataset_));
      if (h_.store_) {
        // Bit-exact copy of the primary stored representation, rebound
        // onto the replica's parameters (never rebuilt from the
        // dequantized values — scales could round differently).
        replica_store_ = std::make_unique<nn::StoredWeightStore>(
            replica_->network(), *h_.store_);
      }
      injector_ = std::make_unique<Injector>(replica_->network(), *profile_,
                                             scenario.duration);
      injector_->set_numeric_type(scenario.numeric_type);
      injector_->set_stored_weights(replica_store_.get());
      detector_ = replica_.get();
      injector_ptr_ = injector_.get();
    }
    injector_ptr_->set_metrics(&h_.metrics_);
    monitor_ = std::make_unique<ModelMonitor>(detector_->network());
    monitor_->set_metrics(&h_.metrics_);
    if (h_.config_.mitigation) {
      protection_ = std::make_unique<Protection>(detector_->network(), h_.bounds_,
                                                 *h_.config_.mitigation);
      protection_->set_enabled(false);
    }
    if (h_.config_.workspace) {
      // One workspace suffices: detect() decodes each pass's output into
      // Detection vectors before the next pass overwrites the slots.
      detector_->set_workspace(&ws_);
      arena_gauge_ = &h_.metrics_.gauge("campaign.arena_high_water_bytes");
      if (h_.config_.diff) {
        // Self-baseline: a differential pass only overwrites suffix
        // slots, so prefix slots keep their fault-free values from this
        // unit's pass 1 — valid to replay for passes 2 and 3.
        diff_ = true;
        ws_.set_prefix_baseline(&ws_);
        ws_.add_prefix_observer(monitor_.get());
        if (protection_) ws_.add_prefix_observer(protection_.get());
        diff_skipped_ = &h_.metrics_.counter("campaign.diff.layers_skipped");
        diff_hits_ = &h_.metrics_.counter("campaign.diff.prefix_hits");
        diff_misses_ = &h_.metrics_.counter("campaign.diff.prefix_misses");
      }
    }
  }

  ~ObjDetUnitRunner() override { detector_->set_workspace(nullptr); }

  std::string run_unit(std::size_t t) override {
    const Scenario& scenario = h_.wrapper_.get_scenario();
    const UnitAddress addr = address_unit(scenario, t);
    const std::size_t group = scenario.max_faults_per_image;

    const data::DetectionSample sample = h_.dataset_.get(addr.img);
    const Shape& s = sample.image.shape();
    const Tensor input = sample.image.reshaped(Shape{1, s[0], s[1], s[2]});

    // Arms the unit's fault group, remapping each neuron fault's batch
    // slot onto this single-image inference (weight faults apply
    // regardless of slot).  fault_addresses_unit takes the drawn slot
    // modulo the batch's occupancy, so a per-batch fault drawn past a
    // short final batch arms on a scored image instead of vanishing.
    const auto arm = [&] {
      std::vector<Fault> armed;
      for (const Fault& f :
           h_.wrapper_.fault_matrix().slice(addr.group_start, group)) {
        if (f.target == FaultTarget::kWeights) {
          armed.push_back(f);
        } else if (fault_addresses_unit(scenario, f, addr)) {
          Fault remapped = f;
          remapped.batch = 0;
          armed.push_back(remapped);
        }
      }
      injector_ptr_->set_inference_index(t);
      injector_ptr_->arm(std::move(armed));
    };

    const std::size_t base_records = injector_ptr_->records().size();

    // ---- pass 1: fault-free -------------------------------------------------
    injector_ptr_->disarm();
    if (protection_) protection_->set_enabled(false);
    auto orig = detector_->detect(input, h_.config_.conf_threshold);

    // ---- pass 2: faulty -----------------------------------------------------
    arm();
    monitor_->reset();
    // Both remaining passes arm the identical fault group, so one
    // boundary serves pass 2 and pass 3 — which also guarantees pass 3
    // never replays a slot pass 2 overwrote.
    std::size_t boundary = 0;
    if (diff_) boundary = diff_prefix_boundary(*injector_ptr_, ws_);
    const auto note_diff = [this] {
      if (!diff_) return;
      const std::size_t reused = ws_.prefix_reused_last_run();
      diff_skipped_->add(reused);
      (reused > 0 ? diff_hits_ : diff_misses_)->add();
    };
    ws_.set_prefix_boundary(boundary);
    auto corr = detector_->detect(input, h_.config_.conf_threshold);
    note_diff();
    const bool due = monitor_->due_detected();

    // ---- pass 3: hardened ---------------------------------------------------
    std::vector<models::Detection> resil;
    if (protection_) {
      injector_ptr_->disarm();
      arm();
      protection_->set_enabled(true);
      ws_.set_prefix_boundary(boundary);
      auto resil_batched = detector_->detect(input, h_.config_.conf_threshold);
      note_diff();
      protection_->set_enabled(false);
      resil = std::move(resil_batched[0]);
    }
    injector_ptr_->disarm();
    if (arena_gauge_ != nullptr) {
      arena_gauge_->set(static_cast<double>(ws_.high_water_bytes()));
    }

    // ---- verdicts + payload -------------------------------------------------
    const bool sde = !due && detections_differ(orig[0], corr[0]);
    const bool resil_sde =
        protection_ && !due && detections_differ(orig[0], resil);

    io::ByteWriter w;
    w.write_u8(due ? 1 : 0);
    w.write_u8(sde ? 1 : 0);
    w.write_u8(resil_sde ? 1 : 0);
    // mAP is evaluated over one pass of the dataset, so detections only
    // ride along for epoch-0 units.
    w.write_u8(addr.epoch == 0 ? 1 : 0);
    if (addr.epoch == 0) {
      w.write_i64(sample.meta.image_id);
      write_detections(w, orig[0]);
      write_detections(w, corr[0]);
      w.write_u8(protection_ ? 1 : 0);
      if (protection_) write_detections(w, resil);
    }
    const auto& recs = injector_ptr_->records();
    w.write_u64(recs.size() - base_records);
    for (std::size_t i = base_records; i < recs.size(); ++i) {
      write_record_bytes(w, recs[i]);
    }
    return w.take();
  }

  /// Packed execution (DESIGN.md §12): the given units run as one
  /// three-pass sequence over a [count, C, H, W] tensor, each unit's
  /// addressed faults armed on its own batch slot.  detect() already
  /// returns per-slot detection lists, so unpacking is direct;
  /// verdicts, payloads, records and counters match count serial units.
  std::vector<std::string> run_unit_pack(
      const std::vector<std::size_t>& units) override {
    if (units.size() == 1) return {run_unit(units[0])};
    const std::size_t count = units.size();
    const Scenario& scenario = h_.wrapper_.get_scenario();
    const std::size_t group = scenario.max_faults_per_image;

    std::vector<UnitAddress> addrs(count);
    std::vector<data::DetectionSample> samples;
    samples.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      addrs[i] = address_unit(scenario, units[i]);
      samples.push_back(h_.dataset_.get(addrs[i].img));
    }
    const Shape& s = samples[0].image.shape();
    Tensor packed(Shape{count, s[0], s[1], s[2]});
    const std::size_t per_image = samples[0].image.numel();
    for (std::size_t i = 0; i < count; ++i) {
      std::copy(samples[i].image.raw(), samples[i].image.raw() + per_image,
                packed.raw() + i * per_image);
    }

    // Arm every unit's addressed faults on its slot.  max_unit_pack()
    // guarantees no weight faults reach a packed pass (weights are
    // shared across slots).
    const auto arm = [&] {
      injector_ptr_->set_inference_index(units[0]);
      std::vector<Fault> armed;
      for (std::size_t i = 0; i < count; ++i) {
        for (const Fault& f :
             h_.wrapper_.fault_matrix().slice(addrs[i].group_start, group)) {
          if (fault_addresses_unit(scenario, f, addrs[i])) {
            Fault remapped = f;
            remapped.batch = static_cast<std::int64_t>(i);
            armed.push_back(remapped);
          }
        }
      }
      injector_ptr_->arm(std::move(armed));
    };

    const std::size_t base_records = injector_ptr_->records().size();
    monitor_->set_slot_count(count);

    // ---- pass 1: fault-free -------------------------------------------------
    injector_ptr_->disarm();
    if (protection_) protection_->set_enabled(false);
    auto orig = detector_->detect(packed, h_.config_.conf_threshold);

    // ---- pass 2: faulty -----------------------------------------------------
    arm();
    monitor_->reset();
    std::size_t boundary = 0;
    if (diff_) boundary = diff_prefix_boundary(*injector_ptr_, ws_);
    const auto note_diff = [this] {
      if (!diff_) return;
      const std::size_t reused = ws_.prefix_reused_last_run();
      diff_skipped_->add(reused);
      (reused > 0 ? diff_hits_ : diff_misses_)->add();
    };
    ws_.set_prefix_boundary(boundary);
    auto corr = detector_->detect(packed, h_.config_.conf_threshold);
    note_diff();
    // Per-slot DUE verdicts, read at the same point a serial unit reads
    // its flag: after the faulty pass, before the hardened one.
    std::vector<std::uint8_t> due(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      due[i] = monitor_->slot_due(i) ? 1 : 0;
    }

    // ---- pass 3: hardened ---------------------------------------------------
    std::vector<std::vector<models::Detection>> resil;
    if (protection_) {
      injector_ptr_->disarm();
      arm();
      protection_->set_enabled(true);
      ws_.set_prefix_boundary(boundary);
      resil = detector_->detect(packed, h_.config_.conf_threshold);
      note_diff();
      protection_->set_enabled(false);
    }
    injector_ptr_->disarm();
    monitor_->set_slot_count(0);
    if (arena_gauge_ != nullptr) {
      arena_gauge_->set(static_cast<double>(ws_.high_water_bytes()));
    }

    // Rewrite the packed pass's records into per-unit serial form (the
    // recorded slot names the owning unit; a serial unit records batch
    // 0 under its own inference index).
    std::vector<InjectionRecord>& recs = injector_ptr_->records_mutable();
    std::vector<std::vector<InjectionRecord>> per_unit_records(count);
    for (std::size_t r = base_records; r < recs.size(); ++r) {
      InjectionRecord record = recs[r];
      const std::size_t slot = static_cast<std::size_t>(record.fault.batch);
      record.fault.batch = 0;
      record.inference_index = units[slot];
      per_unit_records[slot].push_back(record);
      recs[r] = record;
    }

    // ---- per-unit verdicts + payloads ---------------------------------------
    std::vector<std::string> payloads;
    payloads.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const bool unit_due = due[i] != 0;
      const bool sde = !unit_due && detections_differ(orig[i], corr[i]);
      const bool resil_sde =
          protection_ && !unit_due && detections_differ(orig[i], resil[i]);

      io::ByteWriter w;
      w.write_u8(unit_due ? 1 : 0);
      w.write_u8(sde ? 1 : 0);
      w.write_u8(resil_sde ? 1 : 0);
      w.write_u8(addrs[i].epoch == 0 ? 1 : 0);
      if (addrs[i].epoch == 0) {
        w.write_i64(samples[i].meta.image_id);
        write_detections(w, orig[i]);
        write_detections(w, corr[i]);
        w.write_u8(protection_ ? 1 : 0);
        if (protection_) write_detections(w, resil[i]);
      }
      w.write_u64(per_unit_records[i].size());
      for (const InjectionRecord& record : per_unit_records[i]) {
        write_record_bytes(w, record);
      }
      payloads.push_back(w.take());
    }
    return payloads;
  }

 private:
  TestErrorModelsObjDet& h_;
  std::unique_ptr<models::Detector> replica_;  // null when sharing the original
  std::unique_ptr<ModelProfile> profile_;
  // Declared before injector_: the injector's destructor restores
  // corrupted weights through the store.
  std::unique_ptr<nn::StoredWeightStore> replica_store_;
  std::unique_ptr<Injector> injector_;
  std::unique_ptr<ModelMonitor> monitor_;
  std::unique_ptr<Protection> protection_;
  models::Detector* detector_ = nullptr;
  Injector* injector_ptr_ = nullptr;
  nn::InferenceWorkspace ws_;
  util::Gauge* arena_gauge_ = nullptr;
  bool diff_ = false;
  util::Counter* diff_skipped_ = nullptr;
  util::Counter* diff_hits_ = nullptr;
  util::Counter* diff_misses_ = nullptr;
};

TestErrorModelsObjDet::TestErrorModelsObjDet(models::Detector& detector,
                                             const data::DetectionDataset& dataset,
                                             Scenario scenario,
                                             ObjDetCampaignConfig config)
    : detector_(detector),
      dataset_(dataset),
      config_(std::move(config)),
      wrapper_(detector.network(), std::move(scenario), probe_input(dataset)) {
  ALFI_CHECK(wrapper_.get_scenario().dataset_size <= dataset.size(),
             "scenario dataset_size exceeds the dataset");
  if (wrapper_.get_scenario().duration != FaultDuration::kTransient) {
    throw ConfigError(
        "the coupled campaign harness requires transient duration; "
        "use inj_policy per_epoch to model persistent faults");
  }
  if (!config_.fault_file.empty()) wrapper_.load_fault_matrix(config_.fault_file);
}

std::size_t TestErrorModelsObjDet::unit_count() const {
  const Scenario& scenario = wrapper_.get_scenario();
  return scenario.dataset_size * scenario.num_runs;
}

std::uint64_t TestErrorModelsObjDet::fingerprint() const {
  io::ByteWriter extra;
  extra.write_string(config_.mitigation ? to_string(*config_.mitigation)
                                        : "none");
  extra.write_f32(config_.conf_threshold);
  return fnv1a64(extra.bytes(),
                 campaign_fingerprint(wrapper_.get_scenario(),
                                      wrapper_.fault_matrix()));
}

void TestErrorModelsObjDet::prepare() {
  const Scenario& scenario = wrapper_.get_scenario();
  const bool write_outputs = !config_.output_dir.empty();

  // Inference configuration (DESIGN.md §13): resolve the backend — an
  // unavailable explicit choice fails here, loudly — and install the
  // weight representation before calibration so the hardened bounds are
  // profiled on the model the campaign actually runs.
  tensor::Backend& backend = tensor::resolve_backend(scenario.backend);
  tensor::set_active_backend(backend);
  resolved_backend_ = backend.name();
  if (nn::is_stored_type(scenario.numeric_type)) {
    if (!store_) store_.emplace(detector_.network(), scenario.numeric_type);
  } else if (scenario.numeric_type != nn::NumericType::kFloat32) {
    nn::quantize_parameters(detector_.network(), scenario.numeric_type);
  }
  wrapper_.injector().set_numeric_type(scenario.numeric_type);
  wrapper_.injector().set_stored_weights(store_ ? &*store_ : nullptr);

  ivmod_ = {};
  ivmod_.has_resil = config_.mitigation.has_value();
  image_ids_.clear();
  ground_truth_.clear();
  orig_all_.clear();
  corr_all_.clear();
  resil_all_.clear();
  trace_.clear();
  result_ = {};

  ALFI_CHECK(wrapper_.fault_matrix().size() >=
                 groups_needed(scenario) * scenario.max_faults_per_image,
             "fault matrix smaller than the campaign needs: increase "
             "dataset_size/num_runs or load a larger fault file");

  if (write_outputs) {
    std::filesystem::create_directories(config_.output_dir);
    const std::string base = config_.output_dir + "/" + config_.model_name;

    result_.ground_truth_json = base + "_ground_truth.json";
    io::write_json_file(result_.ground_truth_json, data::coco_ground_truth(dataset_));

    result_.scenario_yml = base + "_scenario.yml";
    io::Json meta = scenario.to_yaml();
    meta["meta"]["model"] = io::Json(config_.model_name);
    meta["meta"]["dataset"] = io::Json(dataset_.name());
    meta["meta"]["mitigation"] =
        io::Json(config_.mitigation ? to_string(*config_.mitigation) : "none");
    io::write_yaml_file(result_.scenario_yml, meta);

    result_.fault_bin = base + "_faults.bin";
    wrapper_.save_fault_matrix(result_.fault_bin);
  }

  // Mitigation: profile bounds on fault-free calibration images, once,
  // up front — every worker's Protection shares the same bounds.
  bounds_ = {};
  if (config_.mitigation) {
    std::vector<Tensor> calibration;
    const std::size_t count = std::min(config_.calibration_images, dataset_.size());
    ALFI_CHECK(count > 0, "no calibration images available");
    for (std::size_t i = 0; i < count; ++i) {
      const data::DetectionSample sample = dataset_.get(i);
      const Shape& s = sample.image.shape();
      calibration.push_back(sample.image.reshaped(Shape{1, s[0], s[1], s[2]}));
    }
    bounds_ = profile_activation_ranges(detector_.network(), calibration);
  }
}

std::unique_ptr<CampaignUnitRunner> TestErrorModelsObjDet::make_unit_runner(
    bool shared_model) {
  return std::make_unique<ObjDetUnitRunner>(*this, shared_model);
}

std::size_t TestErrorModelsObjDet::max_unit_pack() const {
  for (const Fault& fault : wrapper_.fault_matrix().faults()) {
    if (fault.target == FaultTarget::kWeights) return 1;
  }
  return std::numeric_limits<std::size_t>::max();
}

std::vector<SteeringCellKey> TestErrorModelsObjDet::steering_cells() const {
  const Scenario& scenario = wrapper_.get_scenario();
  const std::size_t units = unit_count();
  const std::size_t group = scenario.max_faults_per_image;
  const auto& matrix = wrapper_.fault_matrix();

  const ModelProfile& profile = wrapper_.profile();
  std::vector<SteeringCellKey> cells(units);
  for (std::size_t t = 0; t < units; ++t) {
    const UnitAddress addr = address_unit(scenario, t);
    if (addr.group_start + group > matrix.size()) return {};
    // Attribute the unit to its addressed group's FIRST fault — exact
    // for max_faults_per_image == 1.
    const Fault& fault = matrix.faults()[addr.group_start];
    SteeringCellKey& key = cells[t];
    key.layer = fault.layer;
    key.value_type = fault.value_type;
    key.bit_pos = fault.value_type == ValueType::kBitFlip ||
                          fault.value_type == ValueType::kStuckAt0 ||
                          fault.value_type == ValueType::kStuckAt1
                      ? fault.bit_pos
                      : -1;
    if (fault.layer >= 0 &&
        static_cast<std::size_t>(fault.layer) < profile.layer_count()) {
      key.role = nn::layer_kind_name(profile.layer(fault.layer).kind);
    }
  }
  return cells;
}

SteeringUnitOutcome TestErrorModelsObjDet::classify_unit(
    std::size_t, const std::string& payload) const {
  io::ByteReader r(payload);
  SteeringUnitOutcome outcome;
  outcome.due = r.read_u8() != 0;
  outcome.sdc = r.read_u8() != 0;
  r.read_u8();  // resil_sde
  if (r.read_u8() != 0) {  // epoch-0 detections ride along
    r.read_i64();          // image_id
    read_detections(r);    // orig
    read_detections(r);    // corr
    if (r.read_u8() != 0) read_detections(r);  // resil
  }
  // No injection record means the armed fault never landed on this
  // image; the unit carries no vulnerability evidence.
  outcome.skipped = r.read_u64() == 0;
  return outcome;
}

void TestErrorModelsObjDet::absorb_unit(std::size_t t, const std::string& payload) {
  const UnitAddress addr = address_unit(wrapper_.get_scenario(), t);
  io::ByteReader r(payload);

  const bool due = r.read_u8() != 0;
  const bool sde = r.read_u8() != 0;
  const bool resil_sde = r.read_u8() != 0;
  ++ivmod_.total;
  ivmod_.due_images += due ? 1 : 0;
  ivmod_.sde_images += sde ? 1 : 0;
  ivmod_.resil_sde_images += resil_sde ? 1 : 0;

  if (r.read_u8() != 0) {  // epoch-0 detections present
    image_ids_.push_back(r.read_i64());
    ground_truth_.push_back(dataset_.get(addr.img).annotations);
    orig_all_.push_back(read_detections(r));
    corr_all_.push_back(read_detections(r));
    if (r.read_u8() != 0) resil_all_.push_back(read_detections(r));
  }

  const std::uint64_t num_records = r.read_u64();
  for (std::uint64_t i = 0; i < num_records; ++i) {
    trace_.push_back(read_record_bytes(r));
  }
}

void TestErrorModelsObjDet::finalize() {
  const std::size_t num_classes = detector_.num_classes();
  result_.orig_map = evaluate_coco(ground_truth_, orig_all_, num_classes);
  result_.faulty_map = evaluate_coco(ground_truth_, corr_all_, num_classes);
  if (config_.mitigation) {
    result_.resil_map = evaluate_coco(ground_truth_, resil_all_, num_classes);
  }
  result_.ivmod = ivmod_;

  if (!config_.output_dir.empty()) {
    const std::string base = config_.output_dir + "/" + config_.model_name;
    result_.orig_json = base + "_orig_detections.json";
    io::write_json_file(result_.orig_json, detections_to_coco(image_ids_, orig_all_));
    result_.corr_json = base + "_corr_detections.json";
    io::write_json_file(result_.corr_json, detections_to_coco(image_ids_, corr_all_));
    if (config_.mitigation) {
      result_.resil_json = base + "_resil_detections.json";
      io::write_json_file(result_.resil_json,
                          detections_to_coco(image_ids_, resil_all_));
    }
    result_.trace_bin = base + "_trace.bin";
    save_injection_records(trace_, result_.trace_bin);
  }
}

ObjDetCampaignResult TestErrorModelsObjDet::run() {
  const Stopwatch run_watch;
  if (config_.fleet.worker_mode()) {
    // A worker only streams unit frames; the coordinator writes every
    // campaign output exactly once.
    if (!config_.output_dir.empty()) {
      ALFI_LOG(kInfo) << "fleet worker: ignoring output dir (the coordinator "
                         "writes all outputs)";
      config_.output_dir.clear();
    }
    const auto [host, port] = parse_host_port(config_.fleet.connect);
    FleetWorker worker(*this, host, port, /*prepared=*/false);
    const FleetWorkerStats stats = worker.run();
    ALFI_LOG(kInfo) << "fleet worker done: " << stats.units_computed
                    << " units over " << stats.leases_served << " leases"
                    << (stats.drained ? " (drained)" : "");
  } else if (config_.fleet.coordinator_mode()) {
    FleetCoordinator coordinator(*this, &metrics_);
    coordinator.execute();
  } else {
    CampaignExecutor executor(*this, &metrics_);
    executor.execute();
  }
  result_.skipped_injections =
      metrics_.counter("injections.skipped_batch_slot").value();
  if (!config_.metrics_path.empty()) {
    io::MetricsFileInfo info;
    info.task_kind = task_kind();
    info.jobs = config_.jobs;
    info.wall_seconds = run_watch.elapsed_seconds();
    info.backend = resolved_backend_;
    info.numeric_type = nn::to_string(wrapper_.get_scenario().numeric_type);
    io::write_metrics_file(config_.metrics_path, metrics_, info);
  }
  return result_;
}

}  // namespace alfi::core
