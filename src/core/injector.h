// Injector: applies armed faults to one model instance.
//
// Two mechanisms, exactly as in PyTorchFI (paper §II):
//   * Neuron faults — forward hooks registered on every injectable
//     layer corrupt the layer's output tensor in place while faults are
//     armed.  "Hooks are used for fault injection in neurons, since the
//     values of the tensor position that are to be corrupted are only
//     determined during run time."
//   * Weight faults — the parameter tensor is mutated directly when the
//     fault is armed and restored when disarmed (transient) or kept
//     across arm/disarm cycles (permanent), since "weights are defined
//     before the inference run".
//
// Every application is logged as an InjectionRecord (original value,
// corrupted value, flip direction) for the post-run binary trace file.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/fault_matrix.h"
#include "core/model_profile.h"
#include "nn/quantize.h"
#include "util/metrics.h"

namespace alfi::core {

class Injector {
 public:
  /// `profile` must have been built from this same `model`.
  Injector(nn::Module& model, const ModelProfile& profile,
           FaultDuration duration = FaultDuration::kTransient);

  /// Removes all hooks and restores every corrupted weight.
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Arms a set of faults: weight faults are applied immediately,
  /// neuron faults fire on every subsequent forward until disarmed.
  /// A fault's `batch` field selects the sample slot (-1 = all slots;
  /// a slot beyond the actual batch is counted in
  /// skipped_injection_count()).  The campaign harnesses remap slots
  /// onto the actual window occupancy before arming (modulo remap,
  /// DESIGN.md §12), so the skip path is a backstop for hand-armed
  /// faults, not a normal campaign outcome.
  void arm(std::vector<Fault> faults);

  /// Disarms neuron faults and (for transient duration) restores weights.
  void disarm();

  /// Restores every weight corruption, including permanent ones.
  void restore_all_weights();

  /// Labels subsequent records with the current iterator step.
  void set_inference_index(std::size_t index) { inference_index_ = index; }

  const std::vector<InjectionRecord>& records() const { return records_; }
  void clear_records() { records_.clear(); }

  /// Mutable access to the record log.  Batched campaign runners use it
  /// to rewrite the batch-slot coordinates of a packed pass's records
  /// back into the per-unit form a serial run would have produced
  /// (fault.batch -> 0, inference_index -> the slot's unit index);
  /// see DESIGN.md §12.
  std::vector<InjectionRecord>& records_mutable() { return records_; }

  /// Moves the accumulated records out (the injector keeps running with
  /// an empty log).  Lets parallel campaign workers hand their shard's
  /// trace to the merge step without copying.
  std::vector<InjectionRecord> take_records() {
    std::vector<InjectionRecord> out = std::move(records_);
    records_.clear();
    return out;
  }

  std::size_t armed_neuron_fault_count() const;
  std::size_t pending_weight_restores() const { return weight_restores_.size(); }

  /// earliest_armed_layer() result when nothing is armed: every layer's
  /// output is bit-identical to the fault-free pass.
  static constexpr std::size_t kNoArmedLayer = static_cast<std::size_t>(-1);

  /// Smallest injectable-layer index currently carrying a fault — armed
  /// neuron faults (even ones whose batch slot will be skipped: the
  /// hook still accounts for them) and unreverted weight corruptions
  /// alike.  Layers strictly before it compute bit-identical outputs to
  /// the fault-free pass, which is what differential inference exploits.
  std::size_t earliest_armed_layer() const;

  /// Invokes `fn` once per injectable-layer index currently armed
  /// (neuron faults or weight corruptions), in ascending order.
  void for_each_armed_layer(const std::function<void(std::size_t)>& fn) const;

  /// The model profile the injector's layer indices refer to.
  const ModelProfile& profile() const { return profile_; }

  /// Neuron faults whose batch slot exceeded the forwarded batch, so no
  /// value was corrupted and no InjectionRecord written.  Campaigns
  /// surface this so KPI denominators do not silently shrink.
  std::size_t skipped_injection_count() const { return skipped_injections_; }

  /// Mirrors armed/applied/skipped/restore events into `registry`
  /// (counters `injections.*`).  Pass nullptr to detach.
  void set_metrics(util::MetricsRegistry* registry);

  FaultDuration duration() const { return duration_; }
  void set_duration(FaultDuration duration) { duration_ = duration; }

  /// Numeric-emulation contract (DESIGN.md §13): weight restores
  /// round-trip through quantize_value(original, type) so a restored
  /// weight never carries bits below the type's lowest live bit —
  /// identity for fp32.  For stored types also pass the model's
  /// StoredWeightStore via set_stored_weights(); weight faults then
  /// corrupt the STORED code (bit_pos indexes storage_bits(type) bits)
  /// and restore by writing the original code back.
  void set_numeric_type(nn::NumericType type) { numeric_type_ = type; }
  nn::NumericType numeric_type() const { return numeric_type_; }

  /// Attaches the stored-weight representation for this injector's
  /// model instance (nullptr detaches).  Must cover the model's
  /// parameters; required when numeric_type() is a stored type.
  void set_stored_weights(nn::StoredWeightStore* store) { store_ = store; }

 private:
  void apply_neuron_faults(std::size_t layer_index, Tensor& output);
  void apply_weight_fault(const Fault& fault);

  struct WeightRestore {
    nn::Parameter* param;
    std::size_t offset;
    float original;
    std::size_t layer;  // injectable-layer index owning the weight
    std::uint32_t original_code = 0;  // stored representation, if any
    bool stored = false;              // restore via the stored code
  };

  nn::Module& model_;
  const ModelProfile& profile_;
  FaultDuration duration_;
  std::vector<nn::HookHandle> hook_handles_;
  /// Armed neuron faults grouped by injectable-layer index.
  std::vector<std::vector<Fault>> neuron_faults_by_layer_;
  std::vector<WeightRestore> weight_restores_;
  std::vector<InjectionRecord> records_;
  nn::NumericType numeric_type_ = nn::NumericType::kFloat32;
  nn::StoredWeightStore* store_ = nullptr;
  std::size_t inference_index_ = 0;
  std::size_t skipped_injections_ = 0;
  // Resolved once in set_metrics(); updated lock-free on the hot path.
  util::Counter* armed_counter_ = nullptr;
  util::Counter* applied_counter_ = nullptr;
  util::Counter* skipped_counter_ = nullptr;
  util::Counter* weight_applied_counter_ = nullptr;
  util::Counter* weight_restore_counter_ = nullptr;
  // Per-injectable-layer role counters (injections.applied_role.<role>,
  // injections.weight_applied_role.<role>); nullptr for layers with the
  // historical default roles so CNN metrics keep their exact key set.
  std::vector<util::Counter*> role_applied_counters_;
  std::vector<util::Counter*> role_weight_counters_;
};

}  // namespace alfi::core
