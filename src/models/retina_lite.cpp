#include "models/retina_lite.h"

#include <cmath>
#include <cstring>

#include "nn/workspace.h"

namespace alfi::models {

namespace {
constexpr float kFocalAlpha = 0.5f;
constexpr float kFocalGamma = 2.0f;
constexpr float kLambdaBox = 5.0f;
constexpr float kNmsIou = 0.45f;

float sigm(float v) { return 1.0f / (1.0f + std::exp(-v)); }
}  // namespace

RetinaNetModule::RetinaNetModule(std::size_t in_channels, std::size_t num_classes,
                                 std::size_t grid)
    : num_classes_(num_classes) {
  (void)grid;
  auto backbone = std::make_shared<nn::Sequential>();
  backbone->append(std::make_shared<nn::Conv2d>(in_channels, 16, 3, 1, 1));
  backbone->append(std::make_shared<nn::ReLU>());
  backbone->append(std::make_shared<nn::MaxPool2d>(2));
  backbone->append(std::make_shared<nn::Conv2d>(16, 32, 3, 1, 1));
  backbone->append(std::make_shared<nn::ReLU>());
  backbone->append(std::make_shared<nn::MaxPool2d>(2));
  backbone->append(std::make_shared<nn::Conv2d>(32, 64, 3, 1, 1));
  backbone->append(std::make_shared<nn::ReLU>());
  backbone->append(std::make_shared<nn::MaxPool2d>(2));

  auto cls_head = std::make_shared<nn::Sequential>();
  cls_head->append(std::make_shared<nn::Conv2d>(64, 32, 3, 1, 1));
  cls_head->append(std::make_shared<nn::ReLU>());
  cls_head->append(std::make_shared<nn::Conv2d>(32, num_classes, 1, 1, 0));

  auto box_head = std::make_shared<nn::Sequential>();
  box_head->append(std::make_shared<nn::Conv2d>(64, 32, 3, 1, 1));
  box_head->append(std::make_shared<nn::ReLU>());
  box_head->append(std::make_shared<nn::Conv2d>(32, 4, 1, 1, 0));

  backbone_ = register_child("backbone", std::move(backbone));
  cls_head_ = register_child("cls_head", std::move(cls_head));
  box_head_ = register_child("box_head", std::move(box_head));
}

Tensor RetinaNetModule::compute(const Tensor& input) {
  const Tensor features = backbone_->forward(input);
  const Tensor cls = cls_head_->forward(features);
  const Tensor box = box_head_->forward(features);

  const std::size_t n = cls.dim(0), s1 = cls.dim(2), s2 = cls.dim(3);
  ALFI_CHECK(box.dim(2) == s1 && box.dim(3) == s2, "head grid mismatch");
  const std::size_t plane = s1 * s2;
  Tensor out(Shape{n, num_classes_ + 4, s1, s2});
  for (std::size_t sample = 0; sample < n; ++sample) {
    std::memcpy(out.raw() + sample * (num_classes_ + 4) * plane,
                cls.raw() + sample * num_classes_ * plane,
                num_classes_ * plane * sizeof(float));
    std::memcpy(out.raw() + (sample * (num_classes_ + 4) + num_classes_) * plane,
                box.raw() + sample * 4 * plane, 4 * plane * sizeof(float));
  }
  return out;
}

Tensor& RetinaNetModule::compute_ws(const Tensor& input,
                                    nn::InferenceWorkspace& ws) {
  const Tensor& features = backbone_->forward_ws(input, ws);
  const Tensor& cls = cls_head_->forward_ws(features, ws);
  const Tensor& box = box_head_->forward_ws(features, ws);

  const std::size_t n = cls.dim(0), s1 = cls.dim(2), s2 = cls.dim(3);
  ALFI_CHECK(box.dim(2) == s1 && box.dim(3) == s2, "head grid mismatch");
  const std::size_t plane = s1 * s2;
  Tensor& out =
      ws.slot(*this, [&] { return Shape{n, num_classes_ + 4, s1, s2}; });
  for (std::size_t sample = 0; sample < n; ++sample) {
    std::memcpy(out.raw() + sample * (num_classes_ + 4) * plane,
                cls.raw() + sample * num_classes_ * plane,
                num_classes_ * plane * sizeof(float));
    std::memcpy(out.raw() + (sample * (num_classes_ + 4) + num_classes_) * plane,
                box.raw() + sample * 4 * plane, 4 * plane * sizeof(float));
  }
  return out;
}

Tensor RetinaNetModule::backward(const Tensor& grad_output) {
  const std::size_t n = grad_output.dim(0);
  const std::size_t s1 = grad_output.dim(2), s2 = grad_output.dim(3);
  const std::size_t plane = s1 * s2;
  ALFI_CHECK(grad_output.dim(1) == num_classes_ + 4,
             "RetinaNetModule backward: channel mismatch");

  Tensor grad_cls(Shape{n, num_classes_, s1, s2});
  Tensor grad_box(Shape{n, 4, s1, s2});
  for (std::size_t sample = 0; sample < n; ++sample) {
    std::memcpy(grad_cls.raw() + sample * num_classes_ * plane,
                grad_output.raw() + sample * (num_classes_ + 4) * plane,
                num_classes_ * plane * sizeof(float));
    std::memcpy(grad_box.raw() + sample * 4 * plane,
                grad_output.raw() + (sample * (num_classes_ + 4) + num_classes_) * plane,
                4 * plane * sizeof(float));
  }

  Tensor grad_features = cls_head_->backward(grad_cls);
  ops::add_inplace(grad_features, box_head_->backward(grad_box));
  return backbone_->backward(grad_features);
}

RetinaLite::RetinaLite(const GridSpec& grid, std::size_t num_classes,
                       std::size_t in_channels)
    : grid_(grid), num_classes_(num_classes), in_channels_(in_channels) {
  ALFI_CHECK(grid.image_h == grid.grid * 8 && grid.image_w == grid.grid * 8,
             "RetinaLite expects an 8x spatial reduction (image = 8 * grid)");
  net_ = std::make_shared<RetinaNetModule>(in_channels, num_classes, grid.grid);
}

std::vector<std::vector<Detection>> RetinaLite::decode(const Tensor& output,
                                                       float conf_threshold) const {
  const std::size_t n = output.dim(0);
  const std::size_t channels = num_classes_ + 4;
  ALFI_CHECK(output.dim(1) == channels && output.dim(2) == grid_.grid &&
                 output.dim(3) == grid_.grid,
             "RetinaLite decode: unexpected output shape " +
                 output.shape().to_string());
  const std::size_t s = grid_.grid;
  const std::size_t plane = s * s;

  std::vector<std::vector<Detection>> results(n);
  for (std::size_t sample = 0; sample < n; ++sample) {
    const float* base = output.raw() + sample * channels * plane;
    std::vector<Detection> dets;
    for (std::size_t row = 0; row < s; ++row) {
      for (std::size_t col = 0; col < s; ++col) {
        const std::size_t cell = row * s + col;
        for (std::size_t k = 0; k < num_classes_; ++k) {
          const float score = sigm(base[k * plane + cell]);
          if (!(score > conf_threshold)) continue;
          Detection det;
          det.box = decode_box(grid_, row, col, base[(num_classes_ + 0) * plane + cell],
                               base[(num_classes_ + 1) * plane + cell],
                               base[(num_classes_ + 2) * plane + cell],
                               base[(num_classes_ + 3) * plane + cell]);
          det.category = k;
          det.score = score;
          dets.push_back(det);
        }
      }
    }
    results[sample] = nms(std::move(dets), kNmsIou);
  }
  return results;
}

std::vector<std::vector<Detection>> RetinaLite::detect(const Tensor& images,
                                                       float conf_threshold) {
  if (ws_ != nullptr) return decode(ws_->run(*net_, images), conf_threshold);
  return decode(net_->forward(images), conf_threshold);
}

float RetinaLite::train_step(const data::DetectionBatch& batch) {
  net_->set_training(true);
  const Tensor output = net_->forward(batch.images);
  const std::size_t n = output.dim(0);
  const std::size_t channels = num_classes_ + 4;
  const std::size_t s = grid_.grid;
  const std::size_t plane = s * s;

  Tensor grad(output.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);

  for (std::size_t sample = 0; sample < n; ++sample) {
    const float* base = output.raw() + sample * channels * plane;
    float* gbase = grad.raw() + sample * channels * plane;

    std::vector<int> assigned(plane, -1);
    for (std::size_t a = 0; a < batch.annotations[sample].size(); ++a) {
      const auto [row, col] = grid_.cell_of(batch.annotations[sample][a].bbox);
      assigned[row * s + col] = static_cast<int>(a);
    }

    for (std::size_t cell = 0; cell < plane; ++cell) {
      const data::Annotation* ann =
          assigned[cell] >= 0
              ? &batch.annotations[sample][static_cast<std::size_t>(assigned[cell])]
              : nullptr;

      // Focal-style class loss: per-class BCE re-weighted by
      // alpha * (1 - p_t)^gamma with the modulating factor treated as a
      // constant (a standard detached-focal approximation whose gradient
      // is weight * (p - target)).
      for (std::size_t k = 0; k < num_classes_; ++k) {
        const float target = (ann != nullptr && ann->category_id == k) ? 1.0f : 0.0f;
        const float p = sigm(base[k * plane + cell]);
        const float p_t = target > 0.5f ? p : 1.0f - p;
        const float weight =
            kFocalAlpha * std::pow(std::max(1e-6f, 1.0f - p_t), kFocalGamma);
        loss += -weight * std::log(std::max(1e-7f, p_t)) * inv_n;
        gbase[k * plane + cell] = weight * (p - target) * inv_n;
      }

      if (ann == nullptr) continue;
      const BoxTarget target = encode_box(grid_, cell / s, cell % s, ann->bbox);
      const float targets[4] = {target.sx, target.sy, target.sw, target.sh};
      for (std::size_t b = 0; b < 4; ++b) {
        const float t = base[(num_classes_ + b) * plane + cell];
        const float sp = sigm(t);
        const float diff = sp - targets[b];
        loss += kLambdaBox * diff * diff * inv_n;
        gbase[(num_classes_ + b) * plane + cell] =
            kLambdaBox * 2.0f * diff * sp * (1.0f - sp) * inv_n;
      }
    }
  }

  net_->backward(grad);
  net_->set_training(false);
  return static_cast<float>(loss);
}

std::unique_ptr<Detector> RetinaLite::clone() {
  auto copy = std::make_unique<RetinaLite>(grid_, num_classes_, in_channels_);
  copy->network().copy_state_from(network());
  return copy;
}

}  // namespace alfi::models
