// RetinaLite: single-stage detector with separate classification and box
// subnets and a focal-style loss (RetinaNet-family analogue).
//
// Network output: [N, K+4, S, S] with channels
//   0..K-1   independent per-class logits (sigmoid activation, no
//            objectness channel — like RetinaNet's class subnet)
//   K..K+3   tx, ty, tw, th
#pragma once

#include "models/detection.h"

namespace alfi::models {

/// Composite module: backbone + class subnet + box subnet, concatenated
/// along the channel axis so the whole network remains one Module tree
/// for the fault injector.
class RetinaNetModule final : public nn::Module {
 public:
  RetinaNetModule(std::size_t in_channels, std::size_t num_classes, std::size_t grid);

  std::string type() const override { return "RetinaNetModule"; }
  Tensor backward(const Tensor& grad_output) override;

  std::size_t num_classes() const { return num_classes_; }

 protected:
  Tensor compute(const Tensor& input) override;
  /// Workspace twin: heads run on the backbone's slot, the concatenated
  /// map is written into this module's own slot.
  Tensor& compute_ws(const Tensor& input, nn::InferenceWorkspace& ws) override;

 private:
  std::size_t num_classes_;
  Module* backbone_;
  Module* cls_head_;
  Module* box_head_;
};

class RetinaLite final : public Detector {
 public:
  RetinaLite(const GridSpec& grid, std::size_t num_classes, std::size_t in_channels);

  nn::Module& network() override { return *net_; }
  std::string name() const override { return "retina-lite"; }
  const GridSpec& grid() const override { return grid_; }
  std::size_t num_classes() const override { return num_classes_; }

  std::vector<std::vector<Detection>> detect(const Tensor& images,
                                             float conf_threshold) override;
  void set_workspace(nn::InferenceWorkspace* ws) override { ws_ = ws; }
  float train_step(const data::DetectionBatch& batch) override;
  std::unique_ptr<Detector> clone() override;

  std::vector<std::vector<Detection>> decode(const Tensor& output,
                                             float conf_threshold) const;

 private:
  GridSpec grid_;
  std::size_t num_classes_;
  std::size_t in_channels_;
  std::shared_ptr<RetinaNetModule> net_;
  nn::InferenceWorkspace* ws_ = nullptr;
};

}  // namespace alfi::models
