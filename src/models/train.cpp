#include "models/train.h"

#include <cmath>
#include <filesystem>

#include "nn/serialize.h"
#include "util/logging.h"

namespace alfi::models {

float train_classifier(nn::Module& model, const data::ClassificationDataset& dataset,
                       const TrainConfig& config) {
  Rng rng(config.seed);
  nn::kaiming_init(model, rng);
  nn::Sgd optimizer(model.parameters(),
                    {config.learning_rate, config.momentum, config.weight_decay,
                     config.grad_clip});
  data::ClassificationLoader loader(dataset, config.batch_size, /*shuffle=*/true,
                                    config.seed);

  float accuracy = 0.0f;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_learning_rate(
        config.learning_rate *
        std::pow(config.lr_decay, static_cast<float>(epoch)));
    model.set_training(true);
    double epoch_loss = 0.0;
    std::size_t correct = 0, total = 0;
    for (std::size_t b = 0; b < loader.num_batches(); ++b) {
      const data::ClassificationBatch batch = loader.batch(b);
      const Tensor logits = model.forward(batch.images);
      epoch_loss += ops::cross_entropy_loss(logits, batch.labels);
      const Tensor grad = ops::cross_entropy_grad(logits, batch.labels);
      model.backward(grad);
      optimizer.step();

      const std::size_t k = logits.dim(1);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < k; ++c) {
          if (logits.raw()[i * k + c] > logits.raw()[i * k + best]) best = c;
        }
        correct += (best == batch.labels[i]) ? 1 : 0;
        ++total;
      }
    }
    accuracy = static_cast<float>(correct) / static_cast<float>(total);
    if (config.verbose) {
      ALFI_LOG(kInfo) << "epoch " << epoch + 1 << "/" << config.epochs << " loss="
                      << epoch_loss / static_cast<double>(loader.num_batches())
                      << " acc=" << accuracy;
    }
    loader.next_epoch();
  }
  model.set_training(false);
  return accuracy;
}

float evaluate_classifier(nn::Module& model, const data::ClassificationDataset& dataset,
                          std::size_t batch_size) {
  model.set_training(false);
  data::ClassificationLoader loader(dataset, batch_size);
  std::size_t correct = 0, total = 0;
  for (std::size_t b = 0; b < loader.num_batches(); ++b) {
    const data::ClassificationBatch batch = loader.batch(b);
    const Tensor logits = model.forward(batch.images);
    const std::size_t k = logits.dim(1);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < k; ++c) {
        if (logits.raw()[i * k + c] > logits.raw()[i * k + best]) best = c;
      }
      correct += (best == batch.labels[i]) ? 1 : 0;
      ++total;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(total);
}

float train_detector(Detector& detector, const data::DetectionDataset& dataset,
                     const TrainConfig& config) {
  Rng rng(config.seed);
  nn::kaiming_init(detector.network(), rng);
  nn::Sgd optimizer(detector.network().parameters(),
                    {config.learning_rate, config.momentum, config.weight_decay,
                     config.grad_clip});
  data::DetectionLoader loader(dataset, config.batch_size, /*shuffle=*/true,
                               config.seed);

  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.set_learning_rate(
        config.learning_rate *
        std::pow(config.lr_decay, static_cast<float>(epoch)));
    double epoch_loss = 0.0;
    for (std::size_t b = 0; b < loader.num_batches(); ++b) {
      epoch_loss += detector.train_step(loader.batch(b));
      optimizer.step();
    }
    last_epoch_loss =
        static_cast<float>(epoch_loss / static_cast<double>(loader.num_batches()));
    if (config.verbose) {
      ALFI_LOG(kInfo) << detector.name() << " epoch " << epoch + 1 << "/"
                      << config.epochs << " loss=" << last_epoch_loss;
    }
    loader.next_epoch();
  }
  detector.network().set_training(false);
  return last_epoch_loss;
}

float evaluate_detector_recall(Detector& detector, const data::DetectionDataset& dataset,
                               float conf_threshold, std::size_t batch_size) {
  detector.network().set_training(false);
  data::DetectionLoader loader(dataset, batch_size);
  std::size_t recovered = 0, total = 0;
  for (std::size_t b = 0; b < loader.num_batches(); ++b) {
    const data::DetectionBatch batch = loader.batch(b);
    const auto detections = detector.detect(batch.images, conf_threshold);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (const data::Annotation& gt : batch.annotations[i]) {
        ++total;
        for (const Detection& det : detections[i]) {
          if (det.category == gt.category_id && data::iou(det.box, gt.bbox) >= 0.5f) {
            ++recovered;
            break;
          }
        }
      }
    }
  }
  return total == 0 ? 0.0f : static_cast<float>(recovered) / static_cast<float>(total);
}

float train_classifier_cached(nn::Module& model,
                              const data::ClassificationDataset& dataset,
                              const TrainConfig& config, const std::string& cache_path) {
  if (std::filesystem::exists(cache_path)) {
    nn::load_parameters(model, cache_path);
    model.set_training(false);
    return -1.0f;
  }
  const float accuracy = train_classifier(model, dataset, config);
  nn::save_parameters(model, cache_path);
  return accuracy;
}

float train_detector_cached(Detector& detector, const data::DetectionDataset& dataset,
                            const TrainConfig& config, const std::string& cache_path) {
  if (std::filesystem::exists(cache_path)) {
    nn::load_parameters(detector.network(), cache_path);
    detector.network().set_training(false);
    return -1.0f;
  }
  const float loss = train_detector(detector, dataset, config);
  nn::save_parameters(detector.network(), cache_path);
  return loss;
}

}  // namespace alfi::models
