#include "models/yolo_lite.h"

#include <cmath>

#include "nn/workspace.h"

namespace alfi::models {

namespace {
constexpr float kLambdaBox = 5.0f;
constexpr float kLambdaNoObj = 0.5f;
constexpr float kNmsIou = 0.45f;

float sigm(float v) { return 1.0f / (1.0f + std::exp(-v)); }
}  // namespace

YoloLite::YoloLite(const GridSpec& grid, std::size_t num_classes,
                   std::size_t in_channels)
    : grid_(grid), num_classes_(num_classes), in_channels_(in_channels) {
  ALFI_CHECK(grid.image_h == grid.grid * 8 && grid.image_w == grid.grid * 8,
             "YoloLite expects an 8x spatial reduction (image = 8 * grid)");
  net_ = std::make_shared<nn::Sequential>();
  net_->append(std::make_shared<nn::Conv2d>(in_channels, 16, 3, 1, 1));
  net_->append(std::make_shared<nn::LeakyReLU>(0.1f));
  net_->append(std::make_shared<nn::MaxPool2d>(2));
  net_->append(std::make_shared<nn::Conv2d>(16, 32, 3, 1, 1));
  net_->append(std::make_shared<nn::LeakyReLU>(0.1f));
  net_->append(std::make_shared<nn::MaxPool2d>(2));
  net_->append(std::make_shared<nn::Conv2d>(32, 64, 3, 1, 1));
  net_->append(std::make_shared<nn::LeakyReLU>(0.1f));
  net_->append(std::make_shared<nn::MaxPool2d>(2));
  net_->append(std::make_shared<nn::Conv2d>(64, 5 + num_classes, 1, 1, 0));
}

std::vector<std::vector<Detection>> YoloLite::decode(const Tensor& output,
                                                     float conf_threshold) const {
  const std::size_t n = output.dim(0);
  const std::size_t channels = 5 + num_classes_;
  ALFI_CHECK(output.dim(1) == channels && output.dim(2) == grid_.grid &&
                 output.dim(3) == grid_.grid,
             "YoloLite decode: unexpected output shape " + output.shape().to_string());
  const std::size_t s = grid_.grid;
  const std::size_t plane = s * s;

  std::vector<std::vector<Detection>> results(n);
  for (std::size_t sample = 0; sample < n; ++sample) {
    const float* base = output.raw() + sample * channels * plane;
    std::vector<Detection> dets;
    for (std::size_t row = 0; row < s; ++row) {
      for (std::size_t col = 0; col < s; ++col) {
        const std::size_t cell = row * s + col;
        const float obj = sigm(base[0 * plane + cell]);
        if (!(obj > conf_threshold)) continue;  // NaN fails -> skipped
        // class scores via softmax over class logits
        float max_logit = -std::numeric_limits<float>::infinity();
        for (std::size_t k = 0; k < num_classes_; ++k) {
          max_logit = std::max(max_logit, base[(5 + k) * plane + cell]);
        }
        double total = 0.0;
        for (std::size_t k = 0; k < num_classes_; ++k) {
          total += std::exp(base[(5 + k) * plane + cell] - max_logit);
        }
        std::size_t best_class = 0;
        float best_prob = 0.0f;
        for (std::size_t k = 0; k < num_classes_; ++k) {
          const float prob = static_cast<float>(
              std::exp(base[(5 + k) * plane + cell] - max_logit) / total);
          if (prob > best_prob) {
            best_prob = prob;
            best_class = k;
          }
        }
        Detection det;
        det.box = decode_box(grid_, row, col, base[1 * plane + cell],
                             base[2 * plane + cell], base[3 * plane + cell],
                             base[4 * plane + cell]);
        det.category = best_class;
        det.score = obj * best_prob;
        if (det.score > conf_threshold) dets.push_back(det);
      }
    }
    results[sample] = nms(std::move(dets), kNmsIou);
  }
  return results;
}

std::vector<std::vector<Detection>> YoloLite::detect(const Tensor& images,
                                                     float conf_threshold) {
  if (ws_ != nullptr) return decode(ws_->run(*net_, images), conf_threshold);
  return decode(net_->forward(images), conf_threshold);
}

float YoloLite::train_step(const data::DetectionBatch& batch) {
  net_->set_training(true);
  const Tensor output = net_->forward(batch.images);
  const std::size_t n = output.dim(0);
  const std::size_t channels = 5 + num_classes_;
  const std::size_t s = grid_.grid;
  const std::size_t plane = s * s;

  Tensor grad(output.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);

  for (std::size_t sample = 0; sample < n; ++sample) {
    const float* base = output.raw() + sample * channels * plane;
    float* gbase = grad.raw() + sample * channels * plane;

    // Cell assignment: last annotation wins on collisions (rare).
    std::vector<int> assigned(plane, -1);
    for (std::size_t a = 0; a < batch.annotations[sample].size(); ++a) {
      const auto [row, col] = grid_.cell_of(batch.annotations[sample][a].bbox);
      assigned[row * s + col] = static_cast<int>(a);
    }

    for (std::size_t cell = 0; cell < plane; ++cell) {
      const float obj_logit = base[0 * plane + cell];
      const float p = sigm(obj_logit);
      if (assigned[cell] < 0) {
        // no-object BCE
        loss += -kLambdaNoObj * std::log(std::max(1e-7f, 1.0f - p)) * inv_n;
        gbase[0 * plane + cell] = kLambdaNoObj * p * inv_n;
        continue;
      }
      const data::Annotation& ann =
          batch.annotations[sample][static_cast<std::size_t>(assigned[cell])];
      // objectness BCE, target 1
      loss += -std::log(std::max(1e-7f, p)) * inv_n;
      gbase[0 * plane + cell] = (p - 1.0f) * inv_n;

      // box regression on sigmoid outputs
      const BoxTarget target = encode_box(grid_, cell / s, cell % s, ann.bbox);
      const float targets[4] = {target.sx, target.sy, target.sw, target.sh};
      for (std::size_t b = 0; b < 4; ++b) {
        const float t = base[(1 + b) * plane + cell];
        const float sp = sigm(t);
        const float diff = sp - targets[b];
        loss += kLambdaBox * diff * diff * inv_n;
        gbase[(1 + b) * plane + cell] =
            kLambdaBox * 2.0f * diff * sp * (1.0f - sp) * inv_n;
      }

      // class cross-entropy
      float max_logit = -std::numeric_limits<float>::infinity();
      for (std::size_t k = 0; k < num_classes_; ++k) {
        max_logit = std::max(max_logit, base[(5 + k) * plane + cell]);
      }
      double total = 0.0;
      for (std::size_t k = 0; k < num_classes_; ++k) {
        total += std::exp(base[(5 + k) * plane + cell] - max_logit);
      }
      for (std::size_t k = 0; k < num_classes_; ++k) {
        const float prob = static_cast<float>(
            std::exp(base[(5 + k) * plane + cell] - max_logit) / total);
        const float target_k = (k == ann.category_id) ? 1.0f : 0.0f;
        if (k == ann.category_id) loss += -std::log(std::max(1e-7f, prob)) * inv_n;
        gbase[(5 + k) * plane + cell] = (prob - target_k) * inv_n;
      }
    }
  }

  net_->backward(grad);
  net_->set_training(false);
  return static_cast<float>(loss);
}

std::unique_ptr<Detector> YoloLite::clone() {
  auto copy = std::make_unique<YoloLite>(grid_, num_classes_, in_channels_);
  copy->network().copy_state_from(network());
  return copy;
}

}  // namespace alfi::models
