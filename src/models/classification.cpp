#include "models/classification.h"

#include "util/string_util.h"

namespace alfi::models {

using nn::AvgPool2d;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Conv3d;
using nn::Flatten;
using nn::GlobalAvgPool2d;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Residual;
using nn::Sequential;

std::shared_ptr<Sequential> make_mini_alexnet(const ClassifierConfig& config) {
  ALFI_CHECK(config.image_size % 8 == 0, "MiniAlexNet needs image size % 8 == 0");
  auto net = std::make_shared<Sequential>();
  net->append(std::make_shared<Conv2d>(config.in_channels, 16, 5, 1, 2));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<MaxPool2d>(2));
  net->append(std::make_shared<Conv2d>(16, 32, 5, 1, 2));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<MaxPool2d>(2));
  net->append(std::make_shared<Conv2d>(32, 48, 3, 1, 1));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<MaxPool2d>(2));
  net->append(std::make_shared<Flatten>());
  const std::size_t spatial = config.image_size / 8;
  net->append(std::make_shared<Linear>(48 * spatial * spatial, 128));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<Linear>(128, config.num_classes));
  return net;
}

std::shared_ptr<Sequential> make_mini_vgg(const ClassifierConfig& config) {
  ALFI_CHECK(config.image_size % 8 == 0, "MiniVGG needs image size % 8 == 0");
  auto net = std::make_shared<Sequential>();
  auto block = [&net](std::size_t in, std::size_t out) {
    net->append(std::make_shared<Conv2d>(in, out, 3, 1, 1));
    net->append(std::make_shared<ReLU>());
    net->append(std::make_shared<Conv2d>(out, out, 3, 1, 1));
    net->append(std::make_shared<ReLU>());
    net->append(std::make_shared<MaxPool2d>(2));
  };
  block(config.in_channels, 16);
  block(16, 32);
  block(32, 48);
  net->append(std::make_shared<Flatten>());
  const std::size_t spatial = config.image_size / 8;
  net->append(std::make_shared<Linear>(48 * spatial * spatial, 128));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<Linear>(128, config.num_classes));
  return net;
}

namespace {

/// conv-bn-relu-conv-bn with optional strided 1x1 shortcut.
std::shared_ptr<Residual> resnet_block(std::size_t in, std::size_t out,
                                       std::size_t stride) {
  auto main = std::make_shared<Sequential>();
  main->append(std::make_shared<Conv2d>(in, out, 3, stride, 1));
  main->append(std::make_shared<BatchNorm2d>(out));
  main->append(std::make_shared<ReLU>());
  main->append(std::make_shared<Conv2d>(out, out, 3, 1, 1));
  main->append(std::make_shared<BatchNorm2d>(out));

  std::shared_ptr<Sequential> shortcut;
  if (stride != 1 || in != out) {
    shortcut = std::make_shared<Sequential>();
    shortcut->append(std::make_shared<Conv2d>(in, out, 1, stride, 0));
    shortcut->append(std::make_shared<BatchNorm2d>(out));
  }
  return std::make_shared<Residual>(main, shortcut);
}

}  // namespace

std::shared_ptr<Sequential> make_mini_resnet(const ClassifierConfig& config) {
  auto net = std::make_shared<Sequential>();
  net->append(std::make_shared<Conv2d>(config.in_channels, 16, 3, 1, 1));
  net->append(std::make_shared<BatchNorm2d>(16));
  net->append(std::make_shared<ReLU>());
  net->append(resnet_block(16, 16, 1));
  net->append(resnet_block(16, 32, 2));
  net->append(resnet_block(32, 48, 2));
  net->append(std::make_shared<GlobalAvgPool2d>());
  net->append(std::make_shared<Linear>(48, config.num_classes));
  return net;
}

std::shared_ptr<Sequential> make_lenet(const ClassifierConfig& config) {
  ALFI_CHECK(config.image_size % 4 == 0, "LeNet needs image size % 4 == 0");
  auto net = std::make_shared<Sequential>();
  net->append(std::make_shared<Conv2d>(config.in_channels, 6, 5, 1, 2));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<MaxPool2d>(2));
  net->append(std::make_shared<Conv2d>(6, 16, 5, 1, 2));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<MaxPool2d>(2));
  net->append(std::make_shared<Flatten>());
  const std::size_t spatial = config.image_size / 4;
  net->append(std::make_shared<Linear>(16 * spatial * spatial, 64));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<Linear>(64, config.num_classes));
  return net;
}

std::shared_ptr<Sequential> make_classifier(const std::string& name,
                                            const ClassifierConfig& config) {
  const std::string lowered = to_lower(name);
  if (lowered == "alexnet" || lowered == "mini-alexnet") return make_mini_alexnet(config);
  if (lowered == "vgg" || lowered == "vgg16" || lowered == "mini-vgg") return make_mini_vgg(config);
  if (lowered == "resnet" || lowered == "resnet50" || lowered == "mini-resnet") return make_mini_resnet(config);
  if (lowered == "lenet") return make_lenet(config);
  throw ConfigError("unknown classifier architecture: " + name);
}

std::shared_ptr<Sequential> make_mini_transformer(const TransformerConfig& config) {
  ALFI_CHECK(config.num_heads > 0 && config.embed_dim % config.num_heads == 0,
             "MiniTransformer embed_dim must divide evenly into heads");
  ALFI_CHECK(config.num_blocks > 0, "MiniTransformer needs at least one block");
  auto net = std::make_shared<Sequential>();
  // [N,1,1,T] token-id "image" -> [N,T] for the embedding.
  net->append(std::make_shared<Flatten>());
  net->append(std::make_shared<nn::TokenEmbedding>(config.vocab_size,
                                                   config.embed_dim,
                                                   config.seq_len));
  for (std::size_t b = 0; b < config.num_blocks; ++b) {
    net->append(std::make_shared<nn::TransformerBlock>(
        config.embed_dim, config.num_heads, config.mlp_dim));
  }
  net->append(std::make_shared<nn::LayerNorm>(config.embed_dim));
  net->append(std::make_shared<nn::TokenMeanPool>());
  net->append(std::make_shared<Linear>(config.embed_dim, config.num_classes));
  return net;
}

std::shared_ptr<Sequential> make_conv3d_classifier(
    const VolumeClassifierConfig& config) {
  auto net = std::make_shared<Sequential>();
  net->append(std::make_shared<Conv3d>(config.in_channels, 4, 3, 1, 1));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<Conv3d>(4, 8, 3, 2, 1));
  net->append(std::make_shared<ReLU>());
  net->append(std::make_shared<Flatten>());
  const std::size_t d = (config.depth + 1) / 2;
  const std::size_t h = (config.height + 1) / 2;
  const std::size_t w = (config.width + 1) / 2;
  net->append(std::make_shared<Linear>(8 * d * h * w, config.num_classes));
  return net;
}

}  // namespace alfi::models
