// Object detection: shared types, grid geometry, NMS, detector interface.
//
// The three detector families stand in for the paper's YoloV3 /
// RetinaNet / Faster-RCNN (Fig. 2b):
//   * YoloLite  — single-stage dense grid with objectness (YOLO-style).
//   * RetinaLite — single-stage with separate class/box heads and
//     focal-style loss (RetinaNet-style).
//   * FrcnnLite — two-stage: proposal grid + per-proposal head
//     (Faster-RCNN-style).
// All share a SxS output grid over the input image; every decode path
// goes through the underlying nn::Module's forward(), so neuron fault
// hooks apply to detection exactly as to classification.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "nn/layers.h"

namespace alfi::nn {
class InferenceWorkspace;
}

namespace alfi::models {

/// One predicted object.
struct Detection {
  data::BoundingBox box;
  std::size_t category = 0;
  float score = 0.0f;
};

/// Greedy non-maximum suppression (per category), highest score first.
std::vector<Detection> nms(std::vector<Detection> detections, float iou_threshold);

/// Geometry of the SxS prediction grid over an HxW image.
struct GridSpec {
  std::size_t grid = 6;
  std::size_t image_h = 48;
  std::size_t image_w = 48;

  float cell_h() const { return static_cast<float>(image_h) / grid; }
  float cell_w() const { return static_cast<float>(image_w) / grid; }

  /// Grid cell containing the center of `box` (row, col).
  std::pair<std::size_t, std::size_t> cell_of(const data::BoundingBox& box) const;
};

/// Box encoding shared by all three detectors: per cell
/// (tx, ty) -> sigmoid = center offset within cell, (tw, th) -> sigmoid =
/// box size as a fraction of the image.
data::BoundingBox decode_box(const GridSpec& grid, std::size_t row, std::size_t col,
                             float tx, float ty, float tw, float th);

/// Inverse of decode_box for target construction: returns the raw target
/// values (pre-sigmoid offsets are returned *post*-sigmoid, i.e. the
/// desired sigmoid outputs in (0,1)).
struct BoxTarget {
  float sx, sy;  // desired sigmoid(tx), sigmoid(ty)
  float sw, sh;  // desired sigmoid(tw), sigmoid(th)
};
BoxTarget encode_box(const GridSpec& grid, std::size_t row, std::size_t col,
                     const data::BoundingBox& box);

/// Abstract detector: a trainable network plus decode logic.
class Detector {
 public:
  virtual ~Detector() = default;

  /// The underlying module tree, the object the FI wrapper instruments.
  virtual nn::Module& network() = 0;

  virtual std::string name() const = 0;
  virtual const GridSpec& grid() const = 0;
  virtual std::size_t num_classes() const = 0;

  /// Full inference: network forward (hooks run) + decode + NMS.
  virtual std::vector<std::vector<Detection>> detect(const Tensor& images,
                                                     float conf_threshold) = 0;

  /// Routes detect()'s network inference through `ws` — arena-backed
  /// buffers planned once, zero steady-state allocations (DESIGN.md
  /// §10); nullptr restores the allocating forward() path.  The
  /// workspace must outlive its use; clones start without one.  The
  /// default ignores the workspace, so custom detectors keep working
  /// (they just stay on the allocating path).
  virtual void set_workspace(nn::InferenceWorkspace* ws) { (void)ws; }

  /// Deep copy: a fresh detector of the same family and geometry whose
  /// network holds copies of this detector's parameters.  The clone
  /// shares no mutable state with the original, so it can run on
  /// another thread (the basis of parallel object-detection campaigns).
  virtual std::unique_ptr<Detector> clone() = 0;

  /// One optimizer-free training step: forward, loss, backward; the
  /// caller owns the optimizer.  Returns the batch loss.
  virtual float train_step(const data::DetectionBatch& batch) = 0;
};

/// Factory by family name: "yolo", "retina", "frcnn".
std::unique_ptr<Detector> make_detector(const std::string& family, const GridSpec& grid,
                                        std::size_t num_classes, std::size_t in_channels);

}  // namespace alfi::models
