// YoloLite: single-stage dense detector with per-cell objectness
// (YOLO-family analogue).
//
// Network output: [N, 5+K, S, S] with channels
//   0       objectness logit
//   1..4    tx, ty, tw, th (box encoding, see decode_box)
//   5..5+K  class logits
#pragma once

#include "models/detection.h"

namespace alfi::models {

class YoloLite final : public Detector {
 public:
  YoloLite(const GridSpec& grid, std::size_t num_classes, std::size_t in_channels);

  nn::Module& network() override { return *net_; }
  std::string name() const override { return "yolo-lite"; }
  const GridSpec& grid() const override { return grid_; }
  std::size_t num_classes() const override { return num_classes_; }

  std::vector<std::vector<Detection>> detect(const Tensor& images,
                                             float conf_threshold) override;
  void set_workspace(nn::InferenceWorkspace* ws) override { ws_ = ws; }
  float train_step(const data::DetectionBatch& batch) override;
  std::unique_ptr<Detector> clone() override;

  /// Decodes an already-computed output map (used by the objdet test
  /// harness to decode original and corrupted outputs identically).
  std::vector<std::vector<Detection>> decode(const Tensor& output,
                                             float conf_threshold) const;

 private:
  GridSpec grid_;
  std::size_t num_classes_;
  std::size_t in_channels_;
  std::shared_ptr<nn::Sequential> net_;
  nn::InferenceWorkspace* ws_ = nullptr;
};

}  // namespace alfi::models
