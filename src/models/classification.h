// Miniaturized classification architectures.
//
// These stand in for the paper's pretrained AlexNet / VGG-16 / ResNet-50
// (Fig. 2a).  Each keeps the architectural property that drives its
// fault-propagation behaviour:
//   * MiniAlexNet — shallow, large early kernels, no normalization.
//   * MiniVGG     — deepest plain 3x3 stack, large FC head, no
//                   normalization (historically the most SDE-prone of
//                   the three under exponent-bit weight flips).
//   * MiniResNet  — residual blocks with BatchNorm (value ranges are
//                   re-normalized after every block, which bounds the
//                   blast radius of a corrupted value).
//   * LeNet       — tiny net used by the unit tests.
// All expect [N, 3, 32, 32] input and emit [N, num_classes] logits.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace alfi::models {

struct ClassifierConfig {
  std::size_t in_channels = 3;
  std::size_t image_size = 32;
  std::size_t num_classes = 10;
};

/// Builds the requested architecture (uninitialized weights).
std::shared_ptr<nn::Sequential> make_mini_alexnet(const ClassifierConfig& config = {});
std::shared_ptr<nn::Sequential> make_mini_vgg(const ClassifierConfig& config = {});
std::shared_ptr<nn::Sequential> make_mini_resnet(const ClassifierConfig& config = {});
std::shared_ptr<nn::Sequential> make_lenet(const ClassifierConfig& config = {});

/// Builds by name: "alexnet", "vgg", "resnet", "lenet".
std::shared_ptr<nn::Sequential> make_classifier(const std::string& name,
                                                const ClassifierConfig& config = {});

/// MiniTransformer: a small pre-LN encoder for synthetic sequence
/// classification (the attention-injection workload).  Input rides the
/// image plumbing as [N, 1, 1, T] token ids carried as floats; the
/// leading Flatten turns that into [N, T] for the embedding.  Every
/// attention fault site from the GoldenTransformer taxonomy is an
/// injectable leaf: Q/K/V/out projections and the MLP (seq_linear
/// weights + outputs), the post-softmax attention-probability tensor,
/// the residual stream after each join, layernorm gains, and the
/// embedding table.
struct TransformerConfig {
  std::size_t seq_len = 16;
  std::size_t vocab_size = 16;
  std::size_t embed_dim = 32;
  std::size_t num_heads = 4;
  std::size_t num_blocks = 2;
  std::size_t mlp_dim = 64;
  std::size_t num_classes = 4;
};
std::shared_ptr<nn::Sequential> make_mini_transformer(
    const TransformerConfig& config = {});

/// A tiny conv3d video/volume classifier (exercises the Conv3d fault
/// path; input [N, C, D, H, W]).
struct VolumeClassifierConfig {
  std::size_t in_channels = 1;
  std::size_t depth = 8;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t num_classes = 4;
};
std::shared_ptr<nn::Sequential> make_conv3d_classifier(
    const VolumeClassifierConfig& config = {});

}  // namespace alfi::models
