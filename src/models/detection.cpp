#include "models/detection.h"

#include <algorithm>
#include <cmath>

#include "models/frcnn_lite.h"
#include "models/retina_lite.h"
#include "models/yolo_lite.h"

namespace alfi::models {

std::vector<Detection> nms(std::vector<Detection> detections, float iou_threshold) {
  std::stable_sort(detections.begin(), detections.end(),
                   [](const Detection& a, const Detection& b) {
                     if (std::isnan(a.score)) return false;
                     if (std::isnan(b.score)) return true;
                     return a.score > b.score;
                   });
  std::vector<Detection> kept;
  for (const Detection& candidate : detections) {
    bool suppressed = false;
    for (const Detection& winner : kept) {
      if (winner.category == candidate.category &&
          data::iou(winner.box, candidate.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(candidate);
  }
  return kept;
}

std::pair<std::size_t, std::size_t> GridSpec::cell_of(
    const data::BoundingBox& box) const {
  const float cx = box.x + box.w / 2;
  const float cy = box.y + box.h / 2;
  const std::size_t col = std::min(
      grid - 1, static_cast<std::size_t>(std::max(0.0f, cx / cell_w())));
  const std::size_t row = std::min(
      grid - 1, static_cast<std::size_t>(std::max(0.0f, cy / cell_h())));
  return {row, col};
}

data::BoundingBox decode_box(const GridSpec& grid, std::size_t row, std::size_t col,
                             float tx, float ty, float tw, float th) {
  const auto sigm = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  const float cx = (static_cast<float>(col) + sigm(tx)) * grid.cell_w();
  const float cy = (static_cast<float>(row) + sigm(ty)) * grid.cell_h();
  const float w = sigm(tw) * static_cast<float>(grid.image_w);
  const float h = sigm(th) * static_cast<float>(grid.image_h);
  return data::BoundingBox{cx - w / 2, cy - h / 2, w, h};
}

BoxTarget encode_box(const GridSpec& grid, std::size_t row, std::size_t col,
                     const data::BoundingBox& box) {
  const float cx = box.x + box.w / 2;
  const float cy = box.y + box.h / 2;
  const auto clamp01 = [](float v) { return std::min(0.999f, std::max(0.001f, v)); };
  BoxTarget target;
  target.sx = clamp01(cx / grid.cell_w() - static_cast<float>(col));
  target.sy = clamp01(cy / grid.cell_h() - static_cast<float>(row));
  target.sw = clamp01(box.w / static_cast<float>(grid.image_w));
  target.sh = clamp01(box.h / static_cast<float>(grid.image_h));
  return target;
}

std::unique_ptr<Detector> make_detector(const std::string& family, const GridSpec& grid,
                                        std::size_t num_classes,
                                        std::size_t in_channels) {
  if (family == "yolo" || family == "yolov3") {
    return std::make_unique<YoloLite>(grid, num_classes, in_channels);
  }
  if (family == "retina" || family == "retinanet") {
    return std::make_unique<RetinaLite>(grid, num_classes, in_channels);
  }
  if (family == "frcnn" || family == "faster-rcnn") {
    return std::make_unique<FrcnnLite>(grid, num_classes, in_channels);
  }
  throw ConfigError("unknown detector family: " + family);
}

}  // namespace alfi::models
