#include "models/frcnn_lite.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/workspace.h"

namespace alfi::models {

namespace {
constexpr std::size_t kFeatureChannels = 64;
constexpr float kLambdaBox = 5.0f;
constexpr float kLambdaNoObj = 0.5f;
constexpr float kNmsIou = 0.45f;

float sigm(float v) { return 1.0f / (1.0f + std::exp(-v)); }
}  // namespace

FrcnnModule::FrcnnModule(std::size_t in_channels, std::size_t num_classes)
    : num_classes_(num_classes) {
  auto backbone = std::make_shared<nn::Sequential>();
  backbone->append(std::make_shared<nn::Conv2d>(in_channels, 16, 3, 1, 1));
  backbone->append(std::make_shared<nn::ReLU>());
  backbone->append(std::make_shared<nn::MaxPool2d>(2));
  backbone->append(std::make_shared<nn::Conv2d>(16, 32, 3, 1, 1));
  backbone->append(std::make_shared<nn::ReLU>());
  backbone->append(std::make_shared<nn::MaxPool2d>(2));
  backbone->append(std::make_shared<nn::Conv2d>(32, kFeatureChannels, 3, 1, 1));
  backbone->append(std::make_shared<nn::ReLU>());
  backbone->append(std::make_shared<nn::MaxPool2d>(2));

  auto rpn = std::make_shared<nn::Sequential>();
  rpn->append(std::make_shared<nn::Conv2d>(kFeatureChannels, 5, 1, 1, 0));

  auto head = std::make_shared<nn::Sequential>();
  head->append(std::make_shared<nn::Linear>(kFeatureChannels, 64));
  head->append(std::make_shared<nn::ReLU>());
  head->append(std::make_shared<nn::Linear>(64, (num_classes + 1) + 4));

  backbone_ = register_child("backbone", std::move(backbone));
  rpn_ = register_child("rpn", std::move(rpn));
  head_ = register_child("head", std::move(head));
}

Tensor FrcnnModule::compute(const Tensor& input) {
  last_features_ = backbone_->forward(input);
  return rpn_->forward(*last_features_);
}

Tensor& FrcnnModule::compute_ws(const Tensor& input, nn::InferenceWorkspace& ws) {
  Tensor& features = backbone_->forward_ws(input, ws);
  // Owning copy for stage 2: it must survive the arena slots being
  // overwritten, and copy-assignment reuses the existing capacity, so
  // no steady-state allocation.
  last_features_ = features;
  return rpn_->forward_ws(features, ws);
}

void FrcnnModule::probe_forward(const Tensor& input) {
  forward(input);
  head_->forward(Tensor(Shape{1, kFeatureChannels}));
}

Tensor FrcnnModule::backward(const Tensor& grad_output) {
  return backbone_->backward(rpn_->backward(grad_output));
}

const Tensor& FrcnnModule::last_features() const {
  ALFI_CHECK(last_features_.has_value(), "FrcnnModule: forward has not run yet");
  return *last_features_;
}

Tensor FrcnnModule::head_forward(const Tensor& proposal_features) {
  return head_->forward(proposal_features);
}

Tensor FrcnnModule::head_backward(const Tensor& grad_output) {
  return head_->backward(grad_output);
}

FrcnnLite::FrcnnLite(const GridSpec& grid, std::size_t num_classes,
                     std::size_t in_channels)
    : grid_(grid), num_classes_(num_classes), in_channels_(in_channels) {
  ALFI_CHECK(grid.image_h == grid.grid * 8 && grid.image_w == grid.grid * 8,
             "FrcnnLite expects an 8x spatial reduction (image = 8 * grid)");
  net_ = std::make_shared<FrcnnModule>(in_channels, num_classes);
}

void FrcnnLite::set_workspace(nn::InferenceWorkspace* ws) {
  ws_ = ws;
  if (ws != nullptr && head_ws_ == nullptr) {
    head_ws_ = std::make_unique<nn::InferenceWorkspace>();
  }
}

std::vector<std::vector<Detection>> FrcnnLite::detect(const Tensor& images,
                                                      float conf_threshold) {
  Tensor rpn_local;
  const Tensor* rpn_ptr;
  if (ws_ != nullptr) {
    rpn_ptr = &ws_->run(*net_, images);
  } else {
    rpn_local = net_->forward(images);
    rpn_ptr = &rpn_local;
  }
  const Tensor& rpn_out = *rpn_ptr;
  const Tensor& features = net_->last_features();
  const std::size_t n = rpn_out.dim(0);
  const std::size_t s = grid_.grid;
  const std::size_t plane = s * s;

  std::vector<std::vector<Detection>> results(n);
  for (std::size_t sample = 0; sample < n; ++sample) {
    const float* base = rpn_out.raw() + sample * 5 * plane;

    // Select top proposals by objectness.
    std::vector<std::pair<float, std::size_t>> scored;
    scored.reserve(plane);
    for (std::size_t cell = 0; cell < plane; ++cell) {
      const float obj = sigm(base[0 * plane + cell]);
      if (std::isnan(obj)) continue;
      scored.emplace_back(obj, cell);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t proposal_count = std::min(kProposalsPerImage, scored.size());
    if (proposal_count == 0) continue;

    // Pool the proposal cells' feature vectors.
    Tensor pooled(Shape{proposal_count, kFeatureChannels});
    for (std::size_t p = 0; p < proposal_count; ++p) {
      const std::size_t cell = scored[p].second;
      for (std::size_t c = 0; c < kFeatureChannels; ++c) {
        pooled.raw()[p * kFeatureChannels + c] =
            features.raw()[(sample * kFeatureChannels + c) * plane + cell];
      }
    }

    Tensor head_local;
    const Tensor* head_ptr;
    if (ws_ != nullptr) {
      head_ptr = &head_ws_->run(net_->head(), pooled);
    } else {
      head_local = net_->head_forward(pooled);
      head_ptr = &head_local;
    }
    const Tensor& head_out = *head_ptr;
    const std::size_t head_channels = (num_classes_ + 1) + 4;

    std::vector<Detection> dets;
    for (std::size_t p = 0; p < proposal_count; ++p) {
      const float* h = head_out.raw() + p * head_channels;
      // softmax over K+1 (background is class index num_classes_)
      float max_logit = -std::numeric_limits<float>::infinity();
      for (std::size_t k = 0; k <= num_classes_; ++k) max_logit = std::max(max_logit, h[k]);
      double total = 0.0;
      for (std::size_t k = 0; k <= num_classes_; ++k) total += std::exp(h[k] - max_logit);
      std::size_t best = num_classes_;
      float best_prob = 0.0f;
      for (std::size_t k = 0; k <= num_classes_; ++k) {
        const float prob = static_cast<float>(std::exp(h[k] - max_logit) / total);
        if (prob > best_prob) {
          best_prob = prob;
          best = k;
        }
      }
      if (best == num_classes_) continue;  // background wins
      const float score = scored[p].first * best_prob;
      if (!(score > conf_threshold)) continue;

      const std::size_t cell = scored[p].second;
      Detection det;
      det.box = decode_box(grid_, cell / s, cell % s, h[num_classes_ + 1 + 0],
                           h[num_classes_ + 1 + 1], h[num_classes_ + 1 + 2],
                           h[num_classes_ + 1 + 3]);
      det.category = best;
      det.score = score;
      dets.push_back(det);
    }
    results[sample] = nms(std::move(dets), kNmsIou);
  }
  return results;
}

float FrcnnLite::train_step(const data::DetectionBatch& batch) {
  net_->set_training(true);
  const Tensor rpn_out = net_->forward(batch.images);
  const Tensor& features = net_->last_features();
  const std::size_t n = rpn_out.dim(0);
  const std::size_t s = grid_.grid;
  const std::size_t plane = s * s;

  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  Tensor grad_rpn(rpn_out.shape());

  // ---- stage 1: RPN objectness + box ------------------------------------
  std::vector<std::vector<int>> assigned_all(n, std::vector<int>(plane, -1));
  for (std::size_t sample = 0; sample < n; ++sample) {
    const float* base = rpn_out.raw() + sample * 5 * plane;
    float* gbase = grad_rpn.raw() + sample * 5 * plane;
    auto& assigned = assigned_all[sample];
    for (std::size_t a = 0; a < batch.annotations[sample].size(); ++a) {
      const auto [row, col] = grid_.cell_of(batch.annotations[sample][a].bbox);
      assigned[row * s + col] = static_cast<int>(a);
    }

    for (std::size_t cell = 0; cell < plane; ++cell) {
      const float p = sigm(base[0 * plane + cell]);
      if (assigned[cell] < 0) {
        loss += -kLambdaNoObj * std::log(std::max(1e-7f, 1.0f - p)) * inv_n;
        gbase[0 * plane + cell] = kLambdaNoObj * p * inv_n;
        continue;
      }
      const data::Annotation& ann =
          batch.annotations[sample][static_cast<std::size_t>(assigned[cell])];
      loss += -std::log(std::max(1e-7f, p)) * inv_n;
      gbase[0 * plane + cell] = (p - 1.0f) * inv_n;

      const BoxTarget target = encode_box(grid_, cell / s, cell % s, ann.bbox);
      const float targets[4] = {target.sx, target.sy, target.sw, target.sh};
      for (std::size_t b = 0; b < 4; ++b) {
        const float t = base[(1 + b) * plane + cell];
        const float sp = sigm(t);
        const float diff = sp - targets[b];
        loss += kLambdaBox * diff * diff * inv_n;
        gbase[(1 + b) * plane + cell] =
            kLambdaBox * 2.0f * diff * sp * (1.0f - sp) * inv_n;
      }
    }
  }

  // ---- stage 2: head on GT cells (positives) + one negative per image ----
  struct ProposalRef {
    std::size_t sample;
    std::size_t cell;
    int annotation;  // -1 => background
  };
  std::vector<ProposalRef> proposals;
  for (std::size_t sample = 0; sample < n; ++sample) {
    for (std::size_t cell = 0; cell < plane; ++cell) {
      if (assigned_all[sample][cell] >= 0) {
        proposals.push_back({sample, cell, assigned_all[sample][cell]});
      }
    }
    // one deterministic background proposal per image
    for (std::size_t cell = 0; cell < plane; ++cell) {
      if (assigned_all[sample][cell] < 0) {
        proposals.push_back({sample, cell, -1});
        break;
      }
    }
  }

  if (!proposals.empty()) {
    Tensor pooled(Shape{proposals.size(), kFeatureChannels});
    for (std::size_t p = 0; p < proposals.size(); ++p) {
      for (std::size_t c = 0; c < kFeatureChannels; ++c) {
        pooled.raw()[p * kFeatureChannels + c] =
            features.raw()[(proposals[p].sample * kFeatureChannels + c) * plane +
                           proposals[p].cell];
      }
    }
    const Tensor head_out = net_->head_forward(pooled);
    const std::size_t head_channels = (num_classes_ + 1) + 4;
    Tensor grad_head(head_out.shape());
    const float inv_p = 1.0f / static_cast<float>(proposals.size());

    for (std::size_t p = 0; p < proposals.size(); ++p) {
      const float* h = head_out.raw() + p * head_channels;
      float* g = grad_head.raw() + p * head_channels;
      const std::size_t target_class =
          proposals[p].annotation < 0
              ? num_classes_
              : batch.annotations[proposals[p].sample]
                    [static_cast<std::size_t>(proposals[p].annotation)]
                        .category_id;

      float max_logit = -std::numeric_limits<float>::infinity();
      for (std::size_t k = 0; k <= num_classes_; ++k) max_logit = std::max(max_logit, h[k]);
      double total = 0.0;
      for (std::size_t k = 0; k <= num_classes_; ++k) total += std::exp(h[k] - max_logit);
      for (std::size_t k = 0; k <= num_classes_; ++k) {
        const float prob = static_cast<float>(std::exp(h[k] - max_logit) / total);
        const float t = (k == target_class) ? 1.0f : 0.0f;
        if (k == target_class) loss += -std::log(std::max(1e-7f, prob)) * inv_p;
        g[k] = (prob - t) * inv_p;
      }

      if (proposals[p].annotation >= 0) {
        const data::Annotation& ann =
            batch.annotations[proposals[p].sample]
                [static_cast<std::size_t>(proposals[p].annotation)];
        const BoxTarget target =
            encode_box(grid_, proposals[p].cell / s, proposals[p].cell % s, ann.bbox);
        const float targets[4] = {target.sx, target.sy, target.sw, target.sh};
        for (std::size_t b = 0; b < 4; ++b) {
          const float t = h[num_classes_ + 1 + b];
          const float sp = sigm(t);
          const float diff = sp - targets[b];
          loss += kLambdaBox * diff * diff * inv_p;
          g[num_classes_ + 1 + b] =
              kLambdaBox * 2.0f * diff * sp * (1.0f - sp) * inv_p;
        }
      }
    }

    // Backward through the head, scatter the pooled gradient into the
    // feature-map gradient, add the RPN contribution, then the backbone.
    const Tensor grad_pooled = net_->head_backward(grad_head);
    Tensor grad_features = net_->rpn().backward(grad_rpn);
    for (std::size_t p = 0; p < proposals.size(); ++p) {
      for (std::size_t c = 0; c < kFeatureChannels; ++c) {
        grad_features.raw()[(proposals[p].sample * kFeatureChannels + c) * plane +
                            proposals[p].cell] +=
            grad_pooled.raw()[p * kFeatureChannels + c];
      }
    }
    net_->backbone().backward(grad_features);
  } else {
    net_->backward(grad_rpn);
  }

  net_->set_training(false);
  return static_cast<float>(loss);
}

std::unique_ptr<Detector> FrcnnLite::clone() {
  auto copy = std::make_unique<FrcnnLite>(grid_, num_classes_, in_channels_);
  copy->network().copy_state_from(network());
  return copy;
}

}  // namespace alfi::models
