// Training loops for the in-repo evaluation models.
//
// The paper uses pretrained weights; we train the miniaturized models on
// the synthetic datasets until they are accurate enough that SDE (a
// fault-induced *change* of the output) is well defined.  Trained
// weights can be cached on disk (nn/serialize.h) so benchmark binaries
// do not retrain on every run.
#pragma once

#include <string>

#include "data/dataloader.h"
#include "models/detection.h"
#include "nn/layers.h"
#include "nn/optim.h"

namespace alfi::models {

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Elementwise gradient clip (0 = off); detector training enables it.
  float grad_clip = 1.0f;
  /// Multiplicative per-epoch learning-rate decay (1 = constant).  The
  /// miniaturized nets without normalization need an annealed rate to
  /// stay converged once they reach low loss.
  float lr_decay = 0.93f;
  std::uint64_t seed = 1234;
  bool verbose = false;
};

/// Trains `model` with SGD + cross-entropy; returns final train accuracy.
float train_classifier(nn::Module& model, const data::ClassificationDataset& dataset,
                       const TrainConfig& config);

/// Top-1 accuracy of `model` over the whole dataset (eval mode).
float evaluate_classifier(nn::Module& model, const data::ClassificationDataset& dataset,
                          std::size_t batch_size = 32);

/// Trains a detector with SGD; returns the final epoch's mean loss.
float train_detector(Detector& detector, const data::DetectionDataset& dataset,
                     const TrainConfig& config);

/// Fraction of ground-truth objects recovered at IoU >= 0.5 with the
/// correct class (quick training sanity metric; the full COCO AP lives
/// in core/kpi).
float evaluate_detector_recall(Detector& detector, const data::DetectionDataset& dataset,
                               float conf_threshold, std::size_t batch_size = 16);

/// Loads cached parameters if `cache_path` exists, otherwise trains and
/// saves.  Returns the achieved accuracy metric (negative if loaded from
/// cache without re-evaluation).
float train_classifier_cached(nn::Module& model,
                              const data::ClassificationDataset& dataset,
                              const TrainConfig& config, const std::string& cache_path);

float train_detector_cached(Detector& detector, const data::DetectionDataset& dataset,
                            const TrainConfig& config, const std::string& cache_path);

}  // namespace alfi::models
