// FrcnnLite: two-stage detector (Faster-RCNN-family analogue).
//
// Stage 1 (RPN): backbone features -> per-cell objectness + box.
// Stage 2: the feature vector of each proposal cell is classified by a
// small fully-connected head (K foreground classes + background) and its
// box re-regressed.  Both stages are children of one Module tree so the
// fault injector can target backbone, RPN and head layers alike.
#pragma once

#include <optional>

#include "models/detection.h"
#include "nn/workspace.h"

namespace alfi::models {

class FrcnnModule final : public nn::Module {
 public:
  FrcnnModule(std::size_t in_channels, std::size_t num_classes);

  std::string type() const override { return "FrcnnModule"; }

  /// Also exercises the second-stage head (with one pooled zero vector)
  /// so model profiling discovers the head layers' geometry.
  void probe_forward(const Tensor& input) override;

  /// RPN-only backward (grad of the [N,5,S,S] proposal map).
  Tensor backward(const Tensor& grad_output) override;

  /// Features produced by the most recent forward() ([N,64,S,S]).
  const Tensor& last_features() const;

  /// Runs the second-stage head on pooled proposal features [P, 64];
  /// returns [P, (K+1) + 4] (class logits incl. background, then box).
  Tensor head_forward(const Tensor& proposal_features);
  Tensor head_backward(const Tensor& grad_output);

  nn::Module& backbone() { return *backbone_; }
  nn::Module& rpn() { return *rpn_; }
  nn::Module& head() { return *head_; }

  std::size_t num_classes() const { return num_classes_; }

 protected:
  /// Returns the RPN map [N, 5, S, S]; features are cached for stage 2.
  Tensor compute(const Tensor& input) override;
  /// Workspace twin: backbone/RPN run through arena slots; the feature
  /// cache stays an owning copy whose vector capacity is reused, so the
  /// steady state remains allocation-free.
  Tensor& compute_ws(const Tensor& input, nn::InferenceWorkspace& ws) override;

 private:
  std::size_t num_classes_;
  Module* backbone_;
  Module* rpn_;
  Module* head_;
  std::optional<Tensor> last_features_;
};

class FrcnnLite final : public Detector {
 public:
  FrcnnLite(const GridSpec& grid, std::size_t num_classes, std::size_t in_channels);

  nn::Module& network() override { return *net_; }
  std::string name() const override { return "frcnn-lite"; }
  const GridSpec& grid() const override { return grid_; }
  std::size_t num_classes() const override { return num_classes_; }

  std::vector<std::vector<Detection>> detect(const Tensor& images,
                                             float conf_threshold) override;
  void set_workspace(nn::InferenceWorkspace* ws) override;
  float train_step(const data::DetectionBatch& batch) override;
  std::unique_ptr<Detector> clone() override;

  /// Number of proposals forwarded to stage 2 per image.
  static constexpr std::size_t kProposalsPerImage = 6;

 private:
  GridSpec grid_;
  std::size_t num_classes_;
  std::size_t in_channels_;
  std::shared_ptr<FrcnnModule> net_;
  nn::InferenceWorkspace* ws_ = nullptr;
  /// Second-stage workspace: the head is its own root, so it cannot
  /// share ws_ (a workspace serves one root at a time).  Owned here
  /// because the head's proposal batch is detector-driven.
  std::unique_ptr<nn::InferenceWorkspace> head_ws_;
};

}  // namespace alfi::models
