#!/usr/bin/env bash
# Build under UndefinedBehaviorSanitizer only (no ASan overhead, traps
# are non-recoverable) and run the tensor-, nn-, campaign-,
# telemetry-, batched-, backend- and steering-labeled tests: the
# bit-flip/stuck-at bit twiddling, arena offset arithmetic, batch-slot
# remap arithmetic, the differential-inference prefix bookkeeping, the
# stored-code (fp16/int8) quantization paths and the Wilson-interval
# arithmetic driving budgeted steering are the layers where silent UB
# would corrupt campaign verdicts.
# Usage:
#
#   tools/run_ubsan.sh [extra ctest args...]
#
# Uses the "ubsan" CMake preset (build dir: build-ubsan).  Any extra
# arguments are forwarded to ctest, e.g. `tools/run_ubsan.sh -V`.
# Siblings: tools/run_asan.sh (memory layer), tools/run_tsan.sh
# (concurrency layer).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset ubsan
cmake --build --preset ubsan -j "$(nproc)"
ctest --preset ubsan "$@"
