// alfi — command-line front end for the fault-injection framework.
//
// Subcommands:
//   run-imgclass   train (cached) a classifier and run a FI campaign
//   run-objdet     train (cached) a detector and run a FI campaign
//   inspect-faults print a persisted fault matrix (Table I view or JSON)
//   analyze        aggregate a results CSV / injection trace (§V.F.1)
//   show-scenario  parse, validate and echo a scenario YAML
//
// Examples:
//   alfi run-imgclass --model vgg --dataset-size 96 --output out/ --mitigation ranger
//   alfi run-objdet --family yolo --output out/
//   alfi inspect-faults out/vgg_faults.bin
//   alfi analyze out/vgg_results.csv --trace out/vgg_trace.bin
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/alficore.h"
#include "data/synthetic.h"
#include "models/classification.h"
#include "models/train.h"
#include "util/drain.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "vis/ascii_plot.h"

using namespace alfi;

namespace {

/// Minimal --flag value parser; flags without '--' are positionals.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      const std::string token = argv[i];
      if (starts_with(token, "--")) {
        const std::string key = token.substr(2);
        if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
          args.flags[key] = argv[++i];
        } else {
          args.flags[key] = "true";
        }
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = flags.find(key);
    return it == flags.end() ? std::nullopt : std::optional(it->second);
  }
};

/// --jobs N: campaign worker threads; default = hardware concurrency.
std::size_t parse_jobs(const Args& args) {
  const auto value = args.get("jobs");
  if (!value) return core::CampaignRunner::default_job_count();
  const auto parsed = parse_int(*value);
  if (!parsed || *parsed < 1) {
    throw ConfigError("--jobs must be a positive integer, got: " + *value);
  }
  return static_cast<std::size_t>(*parsed);
}

/// --checkpoint <dir> / --resume <dir> / --checkpoint-every N: shared
/// crash-safety flags of both run commands.  --resume implies the
/// checkpoint directory, so `alfi run-... --resume out/ckpt` both
/// continues the interrupted campaign and keeps checkpointing it.
void apply_checkpoint_flags(core::CampaignConfigBase& config, const Args& args) {
  if (const auto dir = args.get("checkpoint")) config.checkpoint_dir = *dir;
  if (const auto dir = args.get("resume")) {
    config.checkpoint_dir = *dir;
    config.resume = true;
  }
  if (const auto v = args.get("checkpoint-every")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--checkpoint-every must be a positive integer, got: " + *v);
    }
    config.checkpoint_every = static_cast<std::size_t>(*parsed);
  }
  if (!config.checkpoint_dir.empty()) install_drain_handlers();
}

/// --metrics <path> / --progress: shared telemetry flags of both run
/// commands.  --metrics writes the campaign's metrics.json (schema in
/// DESIGN.md §9); --progress draws a live stderr line while units run.
void apply_telemetry_flags(core::CampaignConfigBase& config, const Args& args) {
  if (const auto path = args.get("metrics")) config.metrics_path = *path;
  if (args.get("progress")) config.progress = true;
}

/// --no-workspace: fall back to the allocating forward() path instead
/// of arena-backed workspace inference (same outputs, for A/B timing).
/// --no-diff: full recompute of every campaign pass instead of
/// differential inference replaying the fault-free prefix (DESIGN.md
/// §11; same outputs, for A/B verification).
/// --unit-batch K: pack up to K campaign units into one batched forward
/// pass, arming each unit's faults on its own batch slot (DESIGN.md
/// §12; same outputs, clamped to what the workload supports).
void apply_workspace_flag(core::CampaignConfigBase& config, const Args& args) {
  if (args.get("no-workspace")) config.workspace = false;
  if (args.get("no-diff")) config.diff = false;
  if (const auto v = args.get("unit-batch")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--unit-batch must be a positive integer, got: " + *v);
    }
    config.unit_batch = static_cast<std::size_t>(*parsed);
  }
}

/// Distributed fleet role flags (DESIGN.md §14), shared by both run
/// commands:
///   --fleet-workers N        coordinate + fork N local worker processes
///   --fleet-coordinator [P]  coordinate remote workers (listen on port P,
///                            default ephemeral; combinable with
///                            --fleet-workers)
///   --fleet-worker H:P       join the coordinator at host H, port P
///   --lease-units K          units per lease grant (default 8)
/// Coordinator modes require --checkpoint (the shipped frames are merged
/// through the journal).
void apply_fleet_flags(core::CampaignConfigBase& config, const Args& args) {
  if (const auto v = args.get("fleet-workers")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--fleet-workers must be a positive integer, got: " + *v);
    }
    config.fleet.local_workers = static_cast<std::size_t>(*parsed);
  }
  if (const auto v = args.get("fleet-coordinator")) {
    config.fleet.coordinator = true;
    if (*v != "true") {  // a bare flag parses as "true": ephemeral port
      const auto parsed = parse_int(*v);
      if (!parsed || *parsed < 1 || *parsed > 65535) {
        throw ConfigError("--fleet-coordinator port must be 1..65535, got: " + *v);
      }
      config.fleet.listen_port = static_cast<std::uint16_t>(*parsed);
    }
  }
  if (const auto v = args.get("fleet-worker")) {
    config.fleet.connect = *v;
    core::parse_host_port(*v);  // fail fast on a malformed spec
  }
  if (const auto v = args.get("lease-units")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--lease-units must be a positive integer, got: " + *v);
    }
    config.fleet.lease_units = static_cast<std::size_t>(*parsed);
  }
  if (config.fleet.worker_mode() && config.fleet.coordinator_mode()) {
    throw ConfigError(
        "--fleet-worker cannot be combined with --fleet-workers / "
        "--fleet-coordinator");
  }
  // A worker drains to its lease boundary on SIGINT/SIGTERM even
  // without checkpoint flags.
  if (config.fleet.enabled()) install_drain_handlers();
}

/// Adaptive steering flags (DESIGN.md §16), shared by both run commands:
///   --budget N            cap the campaign at N executed units, spent
///                         where the vulnerability map is least certain
///   --steer               stop sampling cells whose Wilson interval is
///                         already narrow (early stopping; usable with
///                         or without --budget)
///   --vuln-map <path>     write the per-(layer, bit, fault-type)
///                         vulnerability map JSON (works on exhaustive
///                         runs too)
///   --steer-half-width W  decision threshold on the interval half-width
///   --steer-z Z           normal quantile of the interval (default 1.96)
///   --steer-min-samples K minimum applied samples before a cell can be
///                         declared decided
///   --steer-round N       units planned per steering round (default
///                         units/8)
void apply_steering_flags(core::CampaignConfigBase& config, const Args& args) {
  if (const auto v = args.get("budget")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--budget must be a positive integer, got: " + *v);
    }
    config.steering.budget = static_cast<std::size_t>(*parsed);
  }
  if (args.get("steer")) config.steering.steer = true;
  if (const auto path = args.get("vuln-map")) config.steering.map_path = *path;
  if (const auto v = args.get("steer-half-width")) {
    const auto parsed = parse_double(*v);
    if (!parsed || *parsed <= 0.0 || *parsed >= 1.0) {
      throw ConfigError("--steer-half-width must be in (0, 1), got: " + *v);
    }
    config.steering.half_width = *parsed;
  }
  if (const auto v = args.get("steer-z")) {
    const auto parsed = parse_double(*v);
    if (!parsed || *parsed <= 0.0) {
      throw ConfigError("--steer-z must be positive, got: " + *v);
    }
    config.steering.z = *parsed;
  }
  if (const auto v = args.get("steer-min-samples")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--steer-min-samples must be a positive integer, got: " +
                        *v);
    }
    config.steering.min_cell_samples = static_cast<std::size_t>(*parsed);
  }
  if (const auto v = args.get("steer-round")) {
    const auto parsed = parse_int(*v);
    if (!parsed || *parsed < 1) {
      throw ConfigError("--steer-round must be a positive integer, got: " + *v);
    }
    config.steering.round_units = static_cast<std::size_t>(*parsed);
  }
}

std::optional<core::MitigationKind> parse_mitigation(const Args& args) {
  const auto value = args.get("mitigation");
  if (!value) return std::nullopt;
  if (*value == "ranger") return core::MitigationKind::kRanger;
  if (*value == "clipper") return core::MitigationKind::kClipper;
  throw ConfigError("unknown mitigation: " + *value + " (ranger|clipper)");
}

core::Scenario load_scenario(const Args& args) {
  core::Scenario scenario;
  if (const auto path = args.get("scenario")) {
    scenario = core::Scenario::from_yaml_file(*path);
  }
  if (const auto v = args.get("dataset-size")) {
    scenario.dataset_size = static_cast<std::size_t>(*parse_int(*v));
  }
  if (const auto v = args.get("faults-per-image")) {
    scenario.max_faults_per_image = static_cast<std::size_t>(*parse_int(*v));
  }
  if (const auto v = args.get("seed")) {
    scenario.rnd_seed = static_cast<std::uint64_t>(*parse_int(*v));
  }
  if (const auto v = args.get("target")) {
    scenario.target = core::fault_target_from_string(*v);
  }
  if (const auto v = args.get("backend")) scenario.backend = *v;
  if (const auto v = args.get("numeric-type")) {
    if (!nn::numeric_type_from_string(*v, scenario.numeric_type)) {
      throw ConfigError("unknown numeric type: " + *v +
                        " (fp32|bf16|fp16|fp16_stored|int8)");
    }
  }
  scenario.validate();
  return scenario;
}

int cmd_run_imgclass(const Args& args) {
  const std::string arch = args.get("model", "lenet");
  core::Scenario scenario = load_scenario(args);

  // --model transformer swaps in the sequence-classification workload:
  // token-id "images" of shape [1,1,T] through the same harness.
  std::unique_ptr<data::ClassificationDataset> dataset_holder;
  if (arch == "transformer") {
    data::SequenceConfig seq_config;
    seq_config.size = std::max<std::size_t>(scenario.dataset_size, 128);
    seq_config.seed = 99;
    dataset_holder =
        std::make_unique<data::SyntheticSequenceClassification>(seq_config);
  } else {
    data::ClassificationConfig data_config;
    data_config.size = std::max<std::size_t>(scenario.dataset_size, 128);
    data_config.seed = 99;
    dataset_holder =
        std::make_unique<data::SyntheticShapesClassification>(data_config);
  }
  const data::ClassificationDataset& dataset = *dataset_holder;

  // Checkpoint flags first: the drain handlers must already be in place
  // while the (potentially long) model training below runs, so a
  // SIGTERM at any point after argument parsing drains gracefully.
  core::ImgClassCampaignConfig config;
  config.model_name = arch;
  config.output_dir = args.get("output", "alfi_out");
  config.mitigation = parse_mitigation(args);
  config.fault_file = args.get("fault-file", "");
  config.jobs = parse_jobs(args);
  apply_checkpoint_flags(config, args);
  apply_telemetry_flags(config, args);
  apply_workspace_flag(config, args);
  apply_fleet_flags(config, args);
  apply_steering_flags(config, args);

  std::shared_ptr<nn::Sequential> model;
  models::TrainConfig train_config;
  if (arch == "transformer") {
    model = models::make_mini_transformer({});
    train_config.epochs = 40;
    train_config.batch_size = 32;
    train_config.learning_rate = 0.05f;
  } else {
    model = models::make_classifier(arch, {});
    train_config.epochs = 30;
    train_config.batch_size = 32;
    train_config.learning_rate = 0.02f;
  }
  std::filesystem::create_directories("alfi_cache");
  models::train_classifier_cached(*model, dataset, train_config,
                                  "alfi_cache/cli_" + arch + ".params");
  std::printf("model %s ready, fault-free accuracy %.3f\n", arch.c_str(),
              static_cast<double>(models::evaluate_classifier(*model, dataset)));

  core::TestErrorModelsImgClass harness(*model, dataset, scenario, config);
  const auto result = harness.run();
  if (config.fleet.worker_mode()) {
    // The worker only streamed unit frames; KPIs and outputs belong to
    // the coordinator's summary.
    return 0;
  }
  std::printf("campaign done: %zu images | SDE %.3f | DUE %.3f", result.kpis.total,
              result.kpis.sde_rate(), result.kpis.due_rate());
  if (result.kpis.has_resil) {
    std::printf(" | hardened SDE %.3f", result.kpis.resil_sde_rate());
  }
  if (result.skipped_injections > 0) {
    std::printf(" | skipped injections %zu", result.skipped_injections);
  }
  std::printf("\noutputs under %s/\n", config.output_dir.c_str());
  if (!config.metrics_path.empty()) {
    std::printf("metrics written to %s\n", config.metrics_path.c_str());
  }
  return 0;
}

int cmd_run_objdet(const Args& args) {
  const std::string family = args.get("family", "yolo");
  core::Scenario scenario = load_scenario(args);

  data::DetectionConfig data_config;
  data_config.size = std::max<std::size_t>(scenario.dataset_size, 48);
  data_config.seed = 41;
  const data::SyntheticShapesDetection dataset(data_config);
  scenario.dataset_size = std::min(scenario.dataset_size, dataset.size());

  // As in run-imgclass: drain handlers in place before the training run.
  core::ObjDetCampaignConfig config;
  config.model_name = family;
  config.output_dir = args.get("output", "alfi_out");
  config.mitigation = parse_mitigation(args);
  config.fault_file = args.get("fault-file", "");
  config.jobs = parse_jobs(args);
  apply_checkpoint_flags(config, args);
  apply_telemetry_flags(config, args);
  apply_workspace_flag(config, args);
  apply_fleet_flags(config, args);
  apply_steering_flags(config, args);

  auto detector = models::make_detector(family, models::GridSpec{6, 48, 48}, 3, 3);
  models::TrainConfig train_config;
  train_config.epochs = 50;
  train_config.batch_size = 16;
  train_config.learning_rate = 0.01f;
  std::filesystem::create_directories("alfi_cache");
  models::train_detector_cached(*detector, dataset, train_config,
                                "alfi_cache/cli_" + family + ".params");
  std::printf("detector %s ready, recall@0.5IoU %.3f\n", family.c_str(),
              static_cast<double>(
                  models::evaluate_detector_recall(*detector, dataset, 0.4f)));

  core::TestErrorModelsObjDet harness(*detector, dataset, scenario, config);
  const auto result = harness.run();
  if (config.fleet.worker_mode()) {
    // The worker only streamed unit frames; KPIs and outputs belong to
    // the coordinator's summary.
    return 0;
  }
  std::printf(
      "campaign done: %zu images | IVMOD_SDE %.3f | IVMOD_DUE %.3f | mAP50 "
      "%.3f -> %.3f\n",
      result.ivmod.total, result.ivmod.sde_rate(), result.ivmod.due_rate(),
      result.orig_map.ap_50, result.faulty_map.ap_50);
  if (result.skipped_injections > 0) {
    std::printf("skipped injections: %zu\n", result.skipped_injections);
  }
  std::printf("outputs under %s/\n", config.output_dir.c_str());
  if (!config.metrics_path.empty()) {
    std::printf("metrics written to %s\n", config.metrics_path.c_str());
  }
  return 0;
}

int cmd_inspect_faults(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: alfi inspect-faults <faults.bin> [--json] [--limit N]\n");
    return 2;
  }
  const core::FaultMatrix matrix = core::FaultMatrix::load(args.positional[0]);
  if (args.get("json")) {
    std::printf("%s\n", matrix.to_json().dump(2).c_str());
    return 0;
  }
  const std::size_t limit = static_cast<std::size_t>(
      *parse_int(args.get("limit", "16")));
  const auto rows = matrix.table_rows();
  const char* names[7] = {"Batch/Layer", "Layer/OutCh", "Channel/InCh", "Depth",
                          "Height",      "Width",       "Value"};
  std::vector<std::string> header{"row"};
  for (std::size_t c = 0; c < std::min(limit, matrix.size()); ++c) {
    header.push_back("f" + std::to_string(c));
  }
  std::vector<std::vector<std::string>> out_rows;
  for (std::size_t r = 0; r < 7; ++r) {
    std::vector<std::string> row{names[r]};
    for (std::size_t c = 0; c < std::min(limit, matrix.size()); ++c) {
      row.push_back(std::to_string(rows[r][c]));
    }
    out_rows.push_back(std::move(row));
  }
  std::printf("%zu faults in %s (showing %zu):\n%s", matrix.size(),
              args.positional[0].c_str(), std::min(limit, matrix.size()),
              vis::table(header, out_rows).c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: alfi analyze <results.csv> [--trace trace.bin]\n");
    return 2;
  }
  const core::CampaignAnalysis analysis =
      core::analyze_results_csv(args.positional[0]);
  std::printf("%s", core::format_analysis(analysis).c_str());
  if (const auto trace = args.get("trace")) {
    std::printf("\n%s", core::format_trace_stats(
                            core::analyze_trace_file(*trace)).c_str());
  }
  return 0;
}

/// Compares two results CSVs image-by-image (e.g. unprotected vs.
/// hardened runs of the same fault file).
int cmd_diff(const Args& args) {
  if (args.positional.size() != 2) {
    std::fprintf(stderr, "usage: alfi diff <a_results.csv> <b_results.csv>\n");
    return 2;
  }
  const io::CsvTable a = io::read_csv_file(args.positional[0]);
  const io::CsvTable b = io::read_csv_file(args.positional[1]);
  if (a.rows.size() != b.rows.size()) {
    std::fprintf(stderr, "alfi: row counts differ (%zu vs %zu)\n", a.rows.size(),
                 b.rows.size());
    return 1;
  }
  const std::size_t a_id = a.column("image_id"), b_id = b.column("image_id");
  const std::size_t a_sde = a.column("sde"), b_sde = b.column("sde");
  const std::size_t a_due = a.column("due"), b_due = b.column("due");
  const std::size_t a_top = a.column("corr_top1_class");
  const std::size_t b_top = b.column("corr_top1_class");

  std::size_t verdict_changes = 0, top1_changes = 0;
  std::size_t fixed = 0, introduced = 0;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i][a_id] != b.rows[i][b_id]) {
      std::fprintf(stderr, "alfi: image order differs at row %zu\n", i);
      return 1;
    }
    const bool a_bad = a.rows[i][a_sde] == "1" || a.rows[i][a_due] == "1";
    const bool b_bad = b.rows[i][b_sde] == "1" || b.rows[i][b_due] == "1";
    if (a_bad != b_bad) {
      ++verdict_changes;
      if (a_bad && !b_bad) ++fixed;
      if (!a_bad && b_bad) ++introduced;
    }
    if (a.rows[i][a_top] != b.rows[i][b_top]) ++top1_changes;
  }
  std::printf("%zu images compared\n", a.rows.size());
  std::printf("  corruption verdict changed: %zu (%zu fixed in B, %zu introduced)\n",
              verdict_changes, fixed, introduced);
  std::printf("  faulty top-1 changed: %zu\n", top1_changes);
  return 0;
}

/// Dumps a model's injectable-target inventory as JSON: one entry per
/// injectable leaf with its layer kind, semantic roles, shapes and unit
/// counts — the scenario author's view of what `target` / `layer_types`
/// can address.  Weights are deterministically initialized (seed 1) so
/// the probe forward is reproducible; only geometry is reported.
int cmd_list_targets(const Args& args) {
  const std::string arch = args.get("model", "lenet");
  std::shared_ptr<nn::Sequential> model;
  Shape probe_shape;
  if (arch == "transformer") {
    const models::TransformerConfig transformer_config;
    model = models::make_mini_transformer(transformer_config);
    probe_shape = Shape{1, 1, 1, transformer_config.seq_len};
  } else {
    model = models::make_classifier(arch, {});
    probe_shape = Shape{1, 3, 32, 32};
  }
  Rng rng(1);
  nn::kaiming_init(*model, rng);
  model->set_training(false);
  const Tensor probe(probe_shape);
  const core::ModelProfile profile(*model, probe);

  io::Json targets = io::Json::array();
  for (const core::LayerInfo& layer : profile.layers()) {
    io::Json entry = io::Json::object();
    entry["index"] = io::Json(layer.index);
    entry["path"] = io::Json(layer.path);
    entry["kind"] = io::Json(nn::layer_kind_name(layer.kind));
    entry["weight_role"] = io::Json(layer.weight_role);
    entry["output_role"] = io::Json(layer.output_role);
    io::Json weight_shape = io::Json::array();
    for (const std::size_t d : layer.weight_shape.dims()) {
      weight_shape.push_back(io::Json(d));
    }
    entry["weight_shape"] = std::move(weight_shape);
    io::Json output_shape = io::Json::array();
    for (const std::size_t d : layer.output_shape.dims()) {
      output_shape.push_back(io::Json(d));
    }
    entry["output_shape"] = std::move(output_shape);
    entry["weight_count"] = io::Json(layer.weight_count);
    entry["neuron_count"] = io::Json(layer.neuron_count);
    targets.push_back(std::move(entry));
  }
  io::Json root = io::Json::object();
  root["model"] = io::Json(arch);
  root["total_weight_count"] = io::Json(profile.total_weight_count());
  root["total_neuron_count"] = io::Json(profile.total_neuron_count());
  root["targets"] = std::move(targets);
  std::printf("%s\n", root.dump(2).c_str());
  return 0;
}

int cmd_show_scenario(const Args& args) {
  const std::string path =
      args.positional.empty() ? "scenarios/default.yml" : args.positional[0];
  const core::Scenario scenario = core::Scenario::from_yaml_file(path);
  std::printf("%s", io::dump_yaml(scenario.to_yaml()).c_str());
  std::printf("# total pre-generated faults n = a*b*c = %zu\n",
              scenario.total_faults());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: alfi <command> [options]\n"
               "commands:\n"
               "  run-imgclass   --model <lenet|alexnet|vgg|resnet|transformer>\n"
               "                 [--scenario f.yml]\n"
               "                 [--dataset-size N] [--faults-per-image N] [--seed N]\n"
               "                 [--target neurons|weights] [--mitigation ranger|clipper]\n"
               "                 [--fault-file f.bin] [--output dir] [--jobs N]\n"
               "                 [--checkpoint dir] [--resume dir] [--checkpoint-every N]\n"
               "                 [--metrics out.json] [--progress] [--no-workspace]\n"
               "                 [--no-diff] [--unit-batch K] [--backend ref|avx2|auto]\n"
               "                 [--numeric-type fp32|bf16|fp16|fp16_stored|int8]\n"
               "                 [--fleet-workers N] [--fleet-coordinator [port]]\n"
               "                 [--fleet-worker host:port] [--lease-units K]\n"
               "                 [--budget N] [--steer] [--vuln-map map.json]\n"
               "                 [--steer-half-width W] [--steer-z Z]\n"
               "                 [--steer-min-samples K] [--steer-round N]\n"
               "                 (--jobs: campaign worker threads, default = all\n"
               "                  cores; output is identical for every job count.\n"
               "                  --unit-batch: pack up to K campaign units into\n"
               "                  one forward pass (default 1); outputs are\n"
               "                  identical for every K.\n"
               "                  --checkpoint: journal completed units so an\n"
               "                  interrupted campaign resumes with --resume;\n"
               "                  SIGINT/SIGTERM drain gracefully, exit code 75.\n"
               "                  --metrics: write campaign telemetry as JSON\n"
               "                  (DESIGN.md §9); --progress: live stderr line;\n"
               "                  --no-workspace: allocating inference path\n"
               "                  instead of arena-backed buffers, same outputs;\n"
               "                  --no-diff: full recompute instead of replaying\n"
               "                  the fault-free prefix, same outputs;\n"
               "                  --backend: kernel backend — ref is the scalar\n"
               "                  oracle, avx2 requires CPU support, auto picks\n"
               "                  the best available; metrics.json records what\n"
               "                  actually ran under inference.backend.\n"
               "                  --numeric-type: weight representation — bf16/\n"
               "                  fp16 emulate by rounding fp32 weights;\n"
               "                  fp16_stored/int8 store true reduced-width\n"
               "                  codes that weight faults corrupt directly.\n"
               "                  --fleet-workers: coordinate N forked local\n"
               "                  worker processes (requires --checkpoint);\n"
               "                  --fleet-coordinator: also/only accept remote\n"
               "                  workers; --fleet-worker: join a coordinator —\n"
               "                  run the SAME campaign command elsewhere with\n"
               "                  this flag; a mismatched scenario or binary is\n"
               "                  refused.  Fleet outputs are byte-identical to\n"
               "                  --jobs 1; see DESIGN.md §14.\n"
               "                  --budget: cap executed units, spent where the\n"
               "                  vulnerability map is least certain; --steer:\n"
               "                  stop sampling statistically decided cells;\n"
               "                  --vuln-map: write the per-(layer, bit, fault-\n"
               "                  type) map JSON (also on exhaustive runs).  The\n"
               "                  plan is deterministic for every --jobs count\n"
               "                  and fleet layout; see DESIGN.md §16)\n"
               "  run-objdet     --family <yolo|retina|frcnn> [same options]\n"
               "  list-targets   --model <lenet|alexnet|vgg|resnet|transformer>\n"
               "                 (dump the injectable-target inventory as JSON:\n"
               "                  per layer its kind, weight/output roles, shapes\n"
               "                  and unit counts)\n"
               "  inspect-faults <faults.bin> [--json] [--limit N]\n"
               "  analyze        <results.csv> [--trace trace.bin]\n"
               "  diff           <a_results.csv> <b_results.csv>\n"
               "  show-scenario  [scenario.yml]\n");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  try {
    if (command == "run-imgclass") return cmd_run_imgclass(args);
    if (command == "run-objdet") return cmd_run_objdet(args);
    if (command == "list-targets") return cmd_list_targets(args);
    if (command == "inspect-faults") return cmd_inspect_faults(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "show-scenario") return cmd_show_scenario(args);
    usage();
    return 2;
  } catch (const core::CampaignInterrupted& e) {
    std::fprintf(stderr, "alfi: %s\n", e.what());
    std::fprintf(stderr,
                 "alfi: rerun with --resume %s to finish the campaign\n",
                 e.checkpoint_dir().c_str());
    return kDrainExitCode;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "alfi: %s\n", e.what());
    return 1;
  }
}
