#!/usr/bin/env bash
# Build the concurrency layer under ThreadSanitizer and run the
# campaign-, telemetry-, batched-, backend-, fleet- and
# steering-labeled tests (CampaignRunner sharding, parallel campaign
# byte-identity — including packed unit-batch execution and the
# backend/jobs identity grid — the lock-free metrics registry hammered
# from worker threads, the multi-process fleet coordinator: forked
# workers, SIGKILL chaos and the coordinator-thread/worker-thread
# remote path, and the steered round barrier where worker shards hand
# outcomes back to the planner).  Usage:
#
#   tools/run_tsan.sh [extra ctest args...]
#
# Uses the "tsan" CMake preset (build dir: build-tsan).  Any extra
# arguments are forwarded to ctest, e.g. `tools/run_tsan.sh -V`.
# The AddressSanitizer+UBSan sibling for the memory layer (arena,
# workspaces, `_into` kernels) is tools/run_asan.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan "$@"
