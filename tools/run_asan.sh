#!/usr/bin/env bash
# Build the memory layer under AddressSanitizer + UBSan and run the
# tensor-, nn-, campaign-, batched-, backend- and steering-labeled
# tests (TensorArena borrows, workspace slot lifetimes, the `_into`
# kernels, the campaign paths that consume them, the packed-unit record
# rewriting of DESIGN.md §12, the AVX2 kernels of DESIGN.md §13 —
# vectorized loads near tensor tails are exactly where ASan earns its
# keep — and the budgeted-steering round loop of DESIGN.md §16, which
# re-reads unit payloads at the round barrier).  Usage:
#
#   tools/run_asan.sh [extra ctest args...]
#
# Uses the "asan" CMake preset (build dir: build-asan).  Any extra
# arguments are forwarded to ctest, e.g. `tools/run_asan.sh -V`.
# The ThreadSanitizer sibling for the concurrency layer is
# tools/run_tsan.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan "$@"
